// Copyright 2026 The ConsensusDB Authors
//
// Tests for the observability layer (src/obs/): the injectable clock, the
// log2-bucketed latency histogram, the metrics registry, and both export
// formats — plus the end-to-end property the subsystem exists to uphold:
// with an injected FakeClock, every trace field and histogram value a
// scheduler produces is exactly reproducible, and trace output never
// changes the answer bytes.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/request_protocol.h"
#include "obs/clock.h"
#include "obs/histogram.h"
#include "service/query_scheduler.h"
#include "service/tree_catalog.h"

namespace cpdb {
namespace {

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

TEST(ClockTest, SteadyClockIsMonotoneNondecreasing) {
  const Clock* clock = SteadyClock::Instance();
  int64_t previous = clock->NowNanos();
  for (int i = 0; i < 1000; ++i) {
    const int64_t now = clock->NowNanos();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

TEST(ClockTest, FakeClockSetAndAdvance) {
  FakeClock clock(100);
  EXPECT_EQ(clock.NowNanos(), 100);
  EXPECT_EQ(clock.NowNanos(), 100);  // fixed: reads do not move it
  clock.Advance(50);
  EXPECT_EQ(clock.NowNanos(), 150);
  clock.Set(7);
  EXPECT_EQ(clock.NowNanos(), 7);
}

TEST(ClockTest, FakeClockAutoAdvanceTicksPerRead) {
  FakeClock clock(1000);
  clock.set_auto_advance(10);
  // N reads observe start, start+step, ..., start+(N-1)*step.
  EXPECT_EQ(clock.NowNanos(), 1000);
  EXPECT_EQ(clock.NowNanos(), 1010);
  EXPECT_EQ(clock.NowNanos(), 1020);
  clock.set_auto_advance(0);
  EXPECT_EQ(clock.NowNanos(), 1030);
  EXPECT_EQ(clock.NowNanos(), 1030);
}

TEST(ClockTest, StopwatchMeasuresFakeClockSpans) {
  FakeClock clock(500);
  Stopwatch watch(&clock);
  EXPECT_TRUE(watch.enabled());
  EXPECT_EQ(watch.ElapsedNanos(), 0);
  clock.Advance(123);
  EXPECT_EQ(watch.ElapsedNanos(), 123);
  clock.Advance(1);
  EXPECT_EQ(watch.ElapsedNanos(), 124);
}

TEST(ClockTest, NullStopwatchIsInertAndBackwardClockClampsToZero) {
  // The metrics-off gate: a null-clock stopwatch reads nothing, returns 0.
  Stopwatch inert(nullptr);
  EXPECT_FALSE(inert.enabled());
  EXPECT_EQ(inert.ElapsedNanos(), 0);

  // A clock stepping backwards (never the real SteadyClock, but FakeClock
  // can) must not surface a negative duration.
  FakeClock clock(1000);
  Stopwatch watch(&clock);
  clock.Set(1);
  EXPECT_EQ(watch.ElapsedNanos(), 0);
}

// ---------------------------------------------------------------------------
// Histogram buckets
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesArePowersOfTwo) {
  // Bucket 0 covers d <= 1 ns (including the clamped 0).
  EXPECT_EQ(LatencyBucketIndex(0), 0);
  EXPECT_EQ(LatencyBucketIndex(1), 0);
  EXPECT_EQ(LatencyBucketIndex(2), 1);
  // Bucket i covers 2^(i-1) < d <= 2^i for every interior boundary.
  for (int i = 1; i < kLatencyHistogramBuckets - 1; ++i) {
    const int64_t upper = int64_t{1} << i;
    EXPECT_EQ(LatencyBucketIndex(upper), i) << "upper bound of bucket " << i;
    EXPECT_EQ(LatencyBucketIndex(upper - 1), i == 1 ? 0 : i)
        << "interior of bucket " << i;
    EXPECT_EQ(LatencyBucketIndex((int64_t{1} << (i - 1)) + 1), i)
        << "lower edge of bucket " << i;
  }
  // Everything beyond 2^38 ns lands in the overflow bucket.
  const int64_t last_finite = int64_t{1} << (kLatencyHistogramBuckets - 2);
  EXPECT_EQ(LatencyBucketIndex(last_finite), kLatencyHistogramBuckets - 2);
  EXPECT_EQ(LatencyBucketIndex(last_finite + 1), kLatencyHistogramBuckets - 1);
  EXPECT_EQ(LatencyBucketIndex(std::numeric_limits<int64_t>::max()),
            kLatencyHistogramBuckets - 1);
}

TEST(HistogramTest, BucketUpperBounds) {
  for (int i = 0; i < kLatencyHistogramBuckets - 1; ++i) {
    EXPECT_EQ(LatencyBucketUpperNanos(i), int64_t{1} << i);
  }
  EXPECT_EQ(LatencyBucketUpperNanos(kLatencyHistogramBuckets - 1), -1);
}

TEST(HistogramTest, RecordAndSnapshot) {
  LatencyHistogram histogram;
  HistogramSnapshot empty = histogram.Snapshot();
  EXPECT_EQ(empty.count, 0);
  EXPECT_EQ(empty.sum_nanos, 0);
  EXPECT_EQ(empty.min_nanos, 0);
  EXPECT_EQ(empty.max_nanos, 0);

  histogram.Record(1);
  histogram.Record(3);
  histogram.Record(3);
  histogram.Record(1000);
  histogram.Record(-5);  // clamped to 0 → bucket 0
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 5);
  EXPECT_EQ(snap.sum_nanos, 1 + 3 + 3 + 1000);
  EXPECT_EQ(snap.min_nanos, 0);
  EXPECT_EQ(snap.max_nanos, 1000);
  EXPECT_EQ(snap.buckets[LatencyBucketIndex(1)], 2);  // the 1 and clamped -5
  EXPECT_EQ(snap.buckets[LatencyBucketIndex(3)], 2);
  EXPECT_EQ(snap.buckets[LatencyBucketIndex(1000)], 1);
}

TEST(HistogramTest, MergeEqualsRecordingBothMultisets) {
  const std::vector<int64_t> left = {1, 5, 17, 100000, 7};
  const std::vector<int64_t> right = {2, 5, 1 << 20, 3};

  LatencyHistogram a, b, combined;
  for (int64_t v : left) {
    a.Record(v);
    combined.Record(v);
  }
  for (int64_t v : right) {
    b.Record(v);
    combined.Record(v);
  }

  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged, combined.Snapshot());

  // Commutative: the other order produces the identical snapshot.
  HistogramSnapshot reversed = b.Snapshot();
  reversed.Merge(a.Snapshot());
  EXPECT_EQ(reversed, merged);
}

TEST(HistogramTest, MergeWithEmptyIsIdentityBothWays) {
  LatencyHistogram histogram;
  histogram.Record(42);
  histogram.Record(99);

  HistogramSnapshot snap = histogram.Snapshot();
  HistogramSnapshot merged = snap;
  merged.Merge(HistogramSnapshot{});
  EXPECT_EQ(merged, snap);

  HistogramSnapshot other{};
  other.Merge(snap);
  EXPECT_EQ(other, snap);
}

// The histogram's thread-safety contract under real threads — this is one
// of the suites the TSan CI job watches.
TEST(HistogramTest, ConcurrentRecordsAllLand) {
  LatencyHistogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(int64_t{1} << (t % 12));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, int64_t{kThreads} * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(snap.min_nanos, 1);
  EXPECT_EQ(snap.max_nanos, int64_t{1} << 7);
}

// ---------------------------------------------------------------------------
// Registry and snapshot merge
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, SnapshotIsSortedAndFindWorks) {
  MetricsRegistry registry;
  Counter* zebra = registry.AddCounter("zebra_total", "z");
  Gauge* alpha = registry.AddGauge("alpha_bytes", "a");
  LatencyHistogram* middle = registry.AddHistogram("middle_ns", "m");

  zebra->Increment(3);
  alpha->Set(17);
  middle->Record(5);

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "alpha_bytes");
  EXPECT_EQ(snap.samples[1].name, "middle_ns");
  EXPECT_EQ(snap.samples[2].name, "zebra_total");

  const MetricSample* found = snap.Find("zebra_total");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(found->value, 3);
  EXPECT_EQ(snap.Find("nope"), nullptr);

  const MetricSample* hist = snap.Find("middle_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(hist->hist.count, 1);
}

TEST(MetricsRegistryTest, GaugeUpdateMaxIsHighWater) {
  Gauge gauge;
  gauge.UpdateMax(10);
  EXPECT_EQ(gauge.value(), 10);
  gauge.UpdateMax(5);  // lower: no change
  EXPECT_EQ(gauge.value(), 10);
  gauge.UpdateMax(11);
  EXPECT_EQ(gauge.value(), 11);
}

TEST(MetricsSnapshotTest, MergeFromSumsAndUnions) {
  MetricsRegistry left_registry;
  left_registry.AddCounter("shared_total", "s")->Increment(2);
  left_registry.AddGauge("left_only", "l")->Set(7);
  left_registry.AddHistogram("lat_ns", "h")->Record(3);

  MetricsRegistry right_registry;
  right_registry.AddCounter("shared_total", "s")->Increment(5);
  right_registry.AddGauge("right_only", "r")->Set(9);
  LatencyHistogram* right_hist = right_registry.AddHistogram("lat_ns", "h");
  right_hist->Record(3);
  right_hist->Record(1000);

  MetricsSnapshot merged = left_registry.Snapshot();
  merged.MergeFrom(right_registry.Snapshot());

  ASSERT_EQ(merged.samples.size(), 4u);
  // Sorted union of names.
  EXPECT_EQ(merged.samples[0].name, "lat_ns");
  EXPECT_EQ(merged.samples[1].name, "left_only");
  EXPECT_EQ(merged.samples[2].name, "right_only");
  EXPECT_EQ(merged.samples[3].name, "shared_total");

  EXPECT_EQ(merged.Find("shared_total")->value, 7);
  EXPECT_EQ(merged.Find("left_only")->value, 7);
  EXPECT_EQ(merged.Find("right_only")->value, 9);
  const MetricSample* hist = merged.Find("lat_ns");
  EXPECT_EQ(hist->hist.count, 3);
  EXPECT_EQ(hist->hist.sum_nanos, 3 + 3 + 1000);
  EXPECT_EQ(hist->hist.buckets[LatencyBucketIndex(3)], 2);

  // Commutative: merging the other way produces identical samples.
  MetricsSnapshot reversed = right_registry.Snapshot();
  reversed.MergeFrom(left_registry.Snapshot());
  ASSERT_EQ(reversed.samples.size(), merged.samples.size());
  for (size_t i = 0; i < merged.samples.size(); ++i) {
    EXPECT_EQ(reversed.samples[i].name, merged.samples[i].name);
    EXPECT_EQ(reversed.samples[i].value, merged.samples[i].value);
    EXPECT_EQ(reversed.samples[i].hist, merged.samples[i].hist);
  }
}

// ---------------------------------------------------------------------------
// kv export
// ---------------------------------------------------------------------------

TEST(MetricsExportTest, KvPairsAreDeterministicAndElideZeroBuckets) {
  MetricsRegistry registry;
  registry.AddCounter("c_total", "c")->Increment(4);
  registry.AddGauge("g_bytes", "g")->Set(12);
  LatencyHistogram* hist = registry.AddHistogram("h_ns", "h");
  hist->Record(1);
  hist->Record(1);
  hist->Record(300);

  auto pairs = MetricsToKvPairs(registry.Snapshot());
  std::vector<std::pair<std::string, std::string>> expected = {
      {"c_total", "4"},
      {"g_bytes", "12"},
      {"h_ns_count", "3"},
      {"h_ns_sum_ns", "302"},
      {"h_ns_min_ns", "1"},
      {"h_ns_max_ns", "300"},
      {"h_ns_b0", "2"},
      {"h_ns_b" + std::to_string(LatencyBucketIndex(300)), "1"},
  };
  EXPECT_EQ(pairs, expected);

  // Twice in a row: bitwise identical.
  EXPECT_EQ(MetricsToKvPairs(registry.Snapshot()), pairs);
}

// ---------------------------------------------------------------------------
// Prometheus export
// ---------------------------------------------------------------------------

// A miniature exposition-format checker: every metric has exactly one HELP
// and one TYPE comment (HELP first), histogram bucket series are cumulative
// and nondecreasing, the mandatory le="+Inf" bucket equals _count, and
// every non-comment line is `name[{labels}] value`.
void CheckPrometheusExposition(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  std::map<std::string, int> help_seen, type_seen;
  std::string current_hist;
  int64_t previous_bucket = 0;
  int64_t inf_value = -1;
  std::map<std::string, int64_t> hist_counts;
  std::map<std::string, int64_t> hist_inf;

  while (std::getline(stream, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string name = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_EQ(++help_seen[name], 1) << "duplicate HELP for " << name;
      EXPECT_EQ(type_seen.count(name), 0u) << "HELP must precede TYPE";
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string name = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_EQ(++type_seen[name], 1) << "duplicate TYPE for " << name;
      EXPECT_EQ(help_seen.count(name), 1u) << "TYPE without HELP for " << name;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment: " << line;

    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string sample = line.substr(0, space);
    const int64_t value = std::stoll(line.substr(space + 1));
    EXPECT_GE(value, 0) << line;

    const size_t brace = sample.find('{');
    if (brace != std::string::npos) {
      // A histogram bucket series: name_bucket{le="..."}.
      const std::string name = sample.substr(0, brace);
      ASSERT_TRUE(name.size() > 7 &&
                  name.compare(name.size() - 7, 7, "_bucket") == 0)
          << "only bucket series carry labels: " << line;
      const std::string base = name.substr(0, name.size() - 7);
      if (base != current_hist) {
        current_hist = base;
        previous_bucket = 0;
      }
      EXPECT_GE(value, previous_bucket)
          << "cumulative buckets must be nondecreasing: " << line;
      previous_bucket = value;
      if (sample.find("le=\"+Inf\"") != std::string::npos) {
        hist_inf[base] = value;
        inf_value = value;
      }
      continue;
    }
    if (sample.size() > 6 &&
        sample.compare(sample.size() - 6, 6, "_count") == 0 &&
        sample.substr(0, sample.size() - 6) == current_hist) {
      hist_counts[current_hist] = value;
    }
  }
  (void)inf_value;
  // Every histogram's +Inf bucket equals its _count.
  for (const auto& [name, count] : hist_counts) {
    ASSERT_EQ(hist_inf.count(name), 1u)
        << "histogram " << name << " missing le=\"+Inf\"";
    EXPECT_EQ(hist_inf[name], count) << "histogram " << name;
  }
  // Every TYPE had a HELP and vice versa.
  EXPECT_EQ(help_seen.size(), type_seen.size());
}

TEST(MetricsExportTest, PrometheusExpositionIsWellFormed) {
  MetricsRegistry registry;
  registry.AddCounter("requests_total", "Requests.")->Increment(6);
  registry.AddGauge("arena_bytes", "Peak arena bytes.")->Set(4096);
  LatencyHistogram* hist = registry.AddHistogram("lat_ns", "Latency.");
  hist->Record(1);
  hist->Record(100);
  hist->Record(100000);
  LatencyHistogram* empty = registry.AddHistogram("idle_ns", "Never hit.");
  (void)empty;

  const std::string text = MetricsToPrometheusText(registry.Snapshot());
  CheckPrometheusExposition(text);

  // Deterministic: a second render is byte-identical.
  EXPECT_EQ(MetricsToPrometheusText(registry.Snapshot()), text);

  // Spot-check the shape.
  EXPECT_NE(text.find("# HELP requests_total Requests.\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total 6\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE arena_bytes gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ns histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum 100101\n"), std::string::npos);
  // An empty histogram still exposes the mandatory +Inf bucket.
  EXPECT_NE(text.find("idle_ns_bucket{le=\"+Inf\"} 0\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End to end: deterministic traces through a scheduler
// ---------------------------------------------------------------------------

constexpr char kTreeText[] =
    "(and (xor 0.6 (leaf key=1 score=8) 0.3 (leaf key=1 score=5))"
    " (xor 0.7 (leaf key=2 score=9))"
    " (xor 0.5 (leaf key=3 score=7) 0.5 (leaf key=3 score=6)))";

std::vector<ServiceRequest> TraceWorkload() {
  std::vector<ServiceRequest> requests;
  ServiceRequest topk;
  topk.op = ServiceRequest::Op::kTopK;
  topk.tree_name = "t";
  topk.k = 2;
  topk.trace = true;
  requests.push_back(topk);

  ServiceRequest world;
  world.op = ServiceRequest::Op::kWorld;
  world.tree_name = "t";
  world.trace = true;
  requests.push_back(world);

  ServiceRequest stats;
  stats.op = ServiceRequest::Op::kStats;
  stats.trace = true;
  requests.push_back(stats);

  ServiceRequest metrics;
  metrics.op = ServiceRequest::Op::kMetrics;
  metrics.trace = true;
  requests.push_back(metrics);
  return requests;
}

// One single-threaded serve pass over the workload with an auto-advancing
// FakeClock; returns the formatted response lines.
std::vector<std::string> RunTracedWorkload() {
  FakeClock clock(1000000);
  clock.set_auto_advance(17);

  EngineOptions engine_options;
  engine_options.num_threads = 1;
  Engine engine(engine_options);
  TreeCatalog catalog;
  EXPECT_TRUE(catalog.InsertFromText("t", kTreeText).ok());

  SchedulerOptions options;
  options.clock = &clock;
  QueryScheduler scheduler(&engine, &catalog, options);

  std::vector<std::string> lines;
  for (const Result<ServiceResponse>& result :
       scheduler.ExecuteBatch(TraceWorkload())) {
    EXPECT_TRUE(result.ok());
    if (result.ok()) lines.push_back(FormatResponseLine(ResponseToFields(*result)));
  }
  return lines;
}

TEST(TraceDeterminismTest, TwoRunsProduceIdenticalTraceBytes) {
  // Single engine thread + auto-advancing FakeClock: every clock read
  // happens on the calling thread in a fixed order, so spans are a pure
  // function of the read count — two runs must agree byte for byte,
  // trace_* fields included.
  const std::vector<std::string> first = RunTracedWorkload();
  const std::vector<std::string> second = RunTracedWorkload();
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first, second);

  // Traced responses carry trace_total_ns (and stage spans for queries).
  EXPECT_NE(first[0].find("\ttrace_total_ns="), std::string::npos);
  EXPECT_NE(first[0].find("\ttrace_catalog_ns="), std::string::npos);
  EXPECT_NE(first[0].find("\ttrace_cache_ns="), std::string::npos);
  EXPECT_NE(first[0].find("\ttrace_fold_ns="), std::string::npos);
  EXPECT_NE(first[1].find("\ttrace_total_ns="), std::string::npos);
  EXPECT_NE(first[2].find("\ttrace_total_ns="), std::string::npos);
  EXPECT_NE(first[3].find("\ttrace_total_ns="), std::string::npos);
}

TEST(TraceDeterminismTest, TraceNeverChangesAnswerBytes) {
  EngineOptions engine_options;
  engine_options.num_threads = 1;

  auto run = [&](bool trace, bool enable_metrics) {
    FakeClock clock(42);
    Engine engine(engine_options);
    TreeCatalog catalog;
    EXPECT_TRUE(catalog.InsertFromText("t", kTreeText).ok());
    SchedulerOptions options;
    options.clock = &clock;
    options.enable_metrics = enable_metrics;
    QueryScheduler scheduler(&engine, &catalog, options);

    std::vector<ServiceRequest> requests = TraceWorkload();
    requests.pop_back();  // drop op=metrics: it errors when disabled
    for (ServiceRequest& request : requests) request.trace = trace;

    std::vector<std::string> lines;
    for (const Result<ServiceResponse>& result :
         scheduler.ExecuteBatch(requests)) {
      EXPECT_TRUE(result.ok());
      if (result.ok()) {
        lines.push_back(FormatResponseLine(ResponseToFields(*result)));
      }
    }
    return lines;
  };

  const std::vector<std::string> traced = run(true, true);
  const std::vector<std::string> plain = run(false, true);
  const std::vector<std::string> metrics_off = run(false, false);
  ASSERT_EQ(traced.size(), plain.size());

  // Stripping the trace_* fields from a traced line recovers the plain
  // line byte for byte; with metrics fully disabled the bytes match too.
  for (size_t i = 0; i < traced.size(); ++i) {
    std::string stripped = traced[i];
    const size_t cut = stripped.find("\ttrace_");
    ASSERT_NE(cut, std::string::npos) << "traced line " << i;
    stripped = stripped.substr(0, cut) + "\n";
    EXPECT_EQ(stripped, plain[i]) << "line " << i;
    EXPECT_EQ(plain[i], metrics_off[i]) << "line " << i;
  }
}

TEST(TraceDeterminismTest, FixedFakeClockYieldsZeroSpans) {
  // A fixed (non-advancing) FakeClock makes every duration exactly 0 —
  // the property the sharded parity tests lean on.
  FakeClock clock(999);
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  Engine engine(engine_options);
  TreeCatalog catalog;
  ASSERT_TRUE(catalog.InsertFromText("t", kTreeText).ok());
  SchedulerOptions options;
  options.clock = &clock;
  QueryScheduler scheduler(&engine, &catalog, options);

  auto results = scheduler.ExecuteBatch(TraceWorkload());
  ASSERT_EQ(results.size(), 4u);
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->timing.total_ns, 0);
    for (const auto& [stage, nanos] : result->timing.spans) {
      EXPECT_EQ(nanos, 0) << stage;
    }
  }

  // And the per-op histograms saw exactly the four requests, all at 0 ns.
  MetricsSnapshot snap = scheduler.MetricsSnapshotNow();
  const MetricSample* topk = snap.Find("cpdb_topk_latency_nanoseconds");
  ASSERT_NE(topk, nullptr);
  EXPECT_EQ(topk->hist.count, 1);
  EXPECT_EQ(topk->hist.sum_nanos, 0);
  EXPECT_EQ(snap.Find("cpdb_requests_total")->value, 4);
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace cpdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad k");
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::NotFound("x");
  Status b = a;
  EXPECT_EQ(a, b);
  a = Status::OK();
  EXPECT_TRUE(a.ok());
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.message(), "x");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotImplemented("").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Infeasible("").code(), StatusCode::kInfeasible);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    CPDB_RETURN_NOT_OK(Status::Internal("inner"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInternal);
  auto succeeds = []() -> Status {
    CPDB_RETURN_NOT_OK(Status::OK());
    return Status::AlreadyExists("outer");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("nope");
    return 10;
  };
  auto outer = [&](bool fail) -> Result<int> {
    CPDB_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 11);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace cpdb

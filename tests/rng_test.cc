// Copyright 2026 The ConsensusDB Authors

#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace cpdb {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next(), vb = b.Next(), vc = c.Next();
    all_equal &= (va == vb);
    any_diff |= (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01MeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    int64_t v = rng.UniformInt(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    ++counts[static_cast<size_t>(v)];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian(2.0, 3.0);
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(RngTest, ZipfSkewsTowardSmallIndices) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[static_cast<size_t>(rng.Zipf(10, 1.0))];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(RngTest, ZipfThetaZeroIsUniform) {
  Rng rng(19);
  std::vector<int> counts(4, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(rng.Zipf(4, 0.0))];
  for (int c : counts) EXPECT_NEAR(c, n / 4, n / 4 * 0.1);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(23);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    int64_t v = rng.Categorical(w);
    ASSERT_GE(v, 0);
    ++counts[static_cast<size_t>(v)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.015);
}

TEST(RngTest, CategoricalAllZeroReturnsMinusOne) {
  Rng rng(29);
  EXPECT_EQ(rng.Categorical({0.0, 0.0}), -1);
  EXPECT_EQ(rng.Categorical({}), -1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace cpdb

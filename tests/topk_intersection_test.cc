// Copyright 2026 The ConsensusDB Authors
//
// Section 5.3: the intersection-metric mean Top-k answer — exact via
// assignment, approximate via Upsilon_H — with the paper's H_k guarantee
// verified empirically.

#include "core/topk_intersection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>

#include "common/math_utils.h"
#include "common/rng.h"
#include "core/evaluation.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

constexpr int kK = 3;

class TopKIntersectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(TopKIntersectionProperty, EvaluatorMatchesEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 47 + 29);
  RandomTreeOptions opts;
  opts.num_keys = 6;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, kK);

  std::vector<KeyId> keys = tree->Keys();
  for (int trial = 0; trial < 5; ++trial) {
    rng.Shuffle(&keys);
    std::vector<KeyId> answer(keys.begin(),
                              keys.begin() + std::min<size_t>(keys.size(), kK));
    auto expected =
        EnumExpectedTopKDistance(*tree, answer, kK, TopKMetric::kIntersection);
    ASSERT_TRUE(expected.ok());
    EXPECT_NEAR(ExpectedTopKIntersection(dist, answer), *expected, 1e-9);
  }
}

TEST_P(TopKIntersectionProperty, ExactBeatsAllOrderedAnswers) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 59 + 31);
  RandomTreeOptions opts;
  opts.num_keys = 5;
  opts.max_depth = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, kK);
  if (static_cast<int>(dist.keys().size()) < kK) GTEST_SKIP();

  auto exact = MeanTopKIntersectionExact(dist);
  ASSERT_TRUE(exact.ok());

  // Brute force over ordered k-tuples of keys.
  std::vector<KeyId> keys = dist.keys();
  double best = std::numeric_limits<double>::infinity();
  std::vector<KeyId> current;
  std::vector<bool> used(keys.size(), false);
  std::function<void()> recurse = [&]() {
    if (current.size() == static_cast<size_t>(kK)) {
      best = std::min(best, ExpectedTopKIntersection(dist, current));
      return;
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      if (used[i]) continue;
      used[i] = true;
      current.push_back(keys[i]);
      recurse();
      current.pop_back();
      used[i] = false;
    }
  };
  recurse();
  EXPECT_NEAR(exact->expected_distance, best, 1e-9);
}

TEST_P(TopKIntersectionProperty, ApproxSatisfiesHkBoundOnProfit) {
  // The paper's guarantee is on the profit objective A(tau):
  // A(approx) >= A(exact) / H_k.
  Rng rng(static_cast<uint64_t>(GetParam()) * 71 + 41);
  RandomTreeOptions opts;
  opts.num_keys = 8;
  opts.max_alternatives = 3;
  auto tree = RandomBid(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, kK);

  auto exact = MeanTopKIntersectionExact(dist);
  ASSERT_TRUE(exact.ok());
  TopKResult approx = MeanTopKIntersectionApprox(dist);

  auto profit = [&](const std::vector<KeyId>& answer) {
    double total = 0.0;
    for (size_t j = 0; j < answer.size(); ++j) {
      total += IntersectionPositionProfit(dist, answer[j],
                                          static_cast<int>(j) + 1);
    }
    return total;
  };
  double a_exact = profit(exact->keys);
  double a_approx = profit(approx.keys);
  EXPECT_GE(a_approx, a_exact / HarmonicNumber(kK) - 1e-9);
  // And the approximation can never beat the exact optimum on E[d_I].
  EXPECT_GE(approx.expected_distance, exact->expected_distance - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKIntersectionProperty,
                         ::testing::Range(0, 15));

TEST(TopKIntersectionTest, UpsilonHIsProfitAtPositionOne) {
  Rng rng(17);
  RandomTreeOptions opts;
  opts.num_keys = 6;
  auto tree = RandomBid(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, 4);
  for (KeyId key : dist.keys()) {
    EXPECT_DOUBLE_EQ(UpsilonH(dist, key),
                     IntersectionPositionProfit(dist, key, 1));
    // Upsilon_H telescopes: sum_i Pr(r <= i)/i.
    double manual = 0.0;
    for (int i = 1; i <= 4; ++i) manual += dist.PrRankLe(key, i) / i;
    EXPECT_NEAR(UpsilonH(dist, key), manual, 1e-12);
  }
}

TEST(TopKIntersectionTest, RequiresEnoughTuples) {
  Rng rng(19);
  auto tree = RandomTupleIndependent(2, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, 3);
  EXPECT_EQ(MeanTopKIntersectionExact(dist).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TopKIntersectionTest, ProfitMonotoneInPosition) {
  // profit(t, j) is non-increasing in j: later positions only lose terms.
  Rng rng(23);
  RandomTreeOptions opts;
  opts.num_keys = 7;
  auto tree = RandomBid(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, 5);
  for (KeyId key : dist.keys()) {
    for (int j = 2; j <= 5; ++j) {
      EXPECT_LE(IntersectionPositionProfit(dist, key, j),
                IntersectionPositionProfit(dist, key, j - 1) + 1e-12);
    }
  }
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// The fast block-independent rank-distribution algorithm must agree exactly
// with the generic generating-function engine (which is itself validated
// against enumeration in rank_distribution_test.cc).

#include "core/rank_distribution_fast.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/jaccard.h"
#include "model/builders.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

class FastRankDistProperty : public ::testing::TestWithParam<int> {};

TEST_P(FastRankDistProperty, AgreesWithGenericEngineOnBid) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 241 + 31);
  RandomTreeOptions opts;
  opts.num_keys = 4 + GetParam() % 24;
  opts.max_alternatives = 1 + GetParam() % 4;
  auto tree = RandomBid(opts, &rng);
  ASSERT_TRUE(tree.ok());
  const int k = 1 + GetParam() % 8;

  RankDistribution generic = ComputeRankDistribution(*tree, k);
  auto fast = ComputeRankDistributionFast(*tree, k);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();

  ASSERT_EQ(fast->keys(), generic.keys());
  ASSERT_EQ(fast->k(), generic.k());
  for (KeyId key : generic.keys()) {
    for (int i = 1; i <= k; ++i) {
      EXPECT_NEAR(fast->PrRankEq(key, i), generic.PrRankEq(key, i), 1e-9)
          << "key " << key << " rank " << i;
    }
    EXPECT_NEAR(fast->PrTopK(key), generic.PrTopK(key), 1e-9);
  }
}

TEST_P(FastRankDistProperty, AgreesOnTupleIndependent) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 757 + 3);
  int n = 3 + GetParam() % 20;
  auto tree = RandomTupleIndependent(n, &rng);
  ASSERT_TRUE(tree.ok());
  const int k = 5;
  RankDistribution generic = ComputeRankDistribution(*tree, k);
  auto fast = ComputeRankDistributionFast(*tree, k);
  ASSERT_TRUE(fast.ok());
  for (KeyId key : generic.keys()) {
    for (int i = 1; i <= k; ++i) {
      EXPECT_NEAR(fast->PrRankEq(key, i), generic.PrRankEq(key, i), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastRankDistProperty, ::testing::Range(0, 20));

TEST(FastRankDistTest, RejectsCorrelatedTrees) {
  Rng rng(3);
  RandomTreeOptions opts;
  opts.num_keys = 4;
  opts.max_depth = 3;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  if (IsBlockIndependent(*tree)) GTEST_SKIP() << "degenerate draw";
  EXPECT_EQ(ComputeRankDistributionFast(*tree, 3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FastRankDistTest, SingleBlockTree) {
  // Root is the XOR itself (no AND wrapper).
  std::vector<Block> blocks(1);
  for (int a = 0; a < 3; ++a) {
    TupleAlternative alt;
    alt.key = 7;
    alt.score = a + 1.0;
    blocks[0].push_back({alt, 0.25});
  }
  auto tree = MakeBlockIndependent(blocks);
  ASSERT_TRUE(tree.ok());
  auto fast = ComputeRankDistributionFast(*tree, 2);
  ASSERT_TRUE(fast.ok());
  EXPECT_NEAR(fast->PrRankEq(7, 1), 0.75, 1e-12);
  EXPECT_NEAR(fast->PrRankEq(7, 2), 0.0, 1e-12);
}

TEST(FastRankDistTest, ZeroProbabilityAlternativesAreHarmless) {
  std::vector<Block> blocks(2);
  TupleAlternative a0{0, 5.0, -1}, a1{0, 4.0, -1}, b0{1, 3.0, -1};
  blocks[0] = {{a0, 0.5}, {a1, 0.0}};
  blocks[1] = {{b0, 0.8}};
  auto tree = MakeBlockIndependent(blocks);
  ASSERT_TRUE(tree.ok());
  auto fast = ComputeRankDistributionFast(*tree, 2);
  ASSERT_TRUE(fast.ok());
  RankDistribution generic = ComputeRankDistribution(*tree, 2);
  for (KeyId key : generic.keys()) {
    for (int i = 1; i <= 2; ++i) {
      EXPECT_NEAR(fast->PrRankEq(key, i), generic.PrRankEq(key, i), 1e-12);
    }
  }
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Validates Theorem 1 (the generating-function method) against exhaustive
// possible-world enumeration: world-size distributions (Example 1), subset
// intersection counts (Example 2), and the Figure 1 worked examples.

#include "model/generating_function.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "model/builders.h"
#include "model/possible_worlds.h"
#include "poly/poly1.h"
#include "poly/poly2.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

TupleAlternative Alt(KeyId key, double score) {
  TupleAlternative a;
  a.key = key;
  a.score = score;
  return a;
}

// World-size generating function: every leaf tagged x.
Poly1 SizeGf(const AndXorTree& tree, int max_degree) {
  auto leaf_poly = [&](NodeId) { return Poly1::Monomial(max_degree, 1, 1.0); };
  auto make_const = [&](double c) { return Poly1::Constant(max_degree, c); };
  return EvalGeneratingFunction<Poly1>(tree, leaf_poly, make_const);
}

TEST(GeneratingFunctionTest, Figure1iSizeDistribution) {
  // Figure 1(i): the BID tree with blocks {0.1,0.5},{0.4,0.4},{0.2,0.8},
  // {0.5,0.5}; the paper reports the size PGF
  // (0.4+0.6x)(0.2+0.8x)(x)(x) = 0.08 x^2 + 0.44 x^3 + 0.48 x^4.
  AndXorTree tree;
  NodeId x1 = tree.AddXor({tree.AddLeaf(Alt(1, 8)), tree.AddLeaf(Alt(1, 2))},
                          {0.1, 0.5});
  NodeId x2 = tree.AddXor({tree.AddLeaf(Alt(2, 3)), tree.AddLeaf(Alt(2, 4))},
                          {0.4, 0.4});
  NodeId x3 = tree.AddXor({tree.AddLeaf(Alt(3, 1)), tree.AddLeaf(Alt(3, 9))},
                          {0.2, 0.8});
  NodeId x4 = tree.AddXor({tree.AddLeaf(Alt(4, 6)), tree.AddLeaf(Alt(4, 5))},
                          {0.5, 0.5});
  tree.SetRoot(tree.AddAnd({x1, x2, x3, x4}));
  ASSERT_TRUE(tree.Validate().ok());

  Poly1 f = SizeGf(tree, 4);
  EXPECT_NEAR(f.Coeff(0), 0.0, 1e-12);
  EXPECT_NEAR(f.Coeff(1), 0.0, 1e-12);  // blocks 3 and 4 are always present
  // Exact expansion of (0.4+0.6x)(0.8x+0.2)(x)(x):
  // x^2: 0.4*0.2 = 0.08 ; x^3: 0.4*0.8+0.6*0.2 = 0.44 ; x^4: 0.6*0.8 = 0.48.
  EXPECT_NEAR(f.Coeff(2), 0.08, 1e-12);
  EXPECT_NEAR(f.Coeff(3), 0.44, 1e-12);
  EXPECT_NEAR(f.Coeff(4), 0.48, 1e-12);
}

TEST(GeneratingFunctionTest, Figure1iiiRankCoefficient) {
  // Figure 1(iii): the coefficient of y must equal 0.3 = Pr(r((t3,6)) = 1)
  // when y tags the (t3,6) leaf and x tags higher-score leaves.
  AndXorTree tree;
  NodeId t3a = tree.AddLeaf(Alt(3, 6));
  NodeId pw1 = tree.AddAnd({t3a, tree.AddLeaf(Alt(2, 5)), tree.AddLeaf(Alt(1, 1))});
  NodeId pw2 = tree.AddAnd({tree.AddLeaf(Alt(3, 9)), tree.AddLeaf(Alt(1, 7)),
                            tree.AddLeaf(Alt(4, 0))});
  NodeId pw3 = tree.AddAnd({tree.AddLeaf(Alt(2, 8)), tree.AddLeaf(Alt(4, 4)),
                            tree.AddLeaf(Alt(5, 3))});
  tree.SetRoot(tree.AddXor({pw1, pw2, pw3}, {0.3, 0.3, 0.4}));
  ASSERT_TRUE(tree.Validate().ok());

  auto leaf_poly = [&](NodeId id) {
    if (id == t3a) return Poly2::Monomial(3, 1, 0, 1, 1.0);  // y
    const TupleAlternative& other = tree.node(id).leaf;
    if (other.key != 3 && other.score > 6.0) {
      return Poly2::Monomial(3, 1, 1, 0, 1.0);  // x
    }
    return Poly2::Constant(3, 1, 1.0);
  };
  auto make_const = [&](double c) { return Poly2::Constant(3, 1, c); };
  Poly2 f = EvalGeneratingFunction<Poly2>(tree, leaf_poly, make_const);
  // x^0 y^1: (t3,6) present with nothing above it -> rank 1 -> pw1 only.
  EXPECT_NEAR(f.Coeff(0, 1), 0.3, 1e-12);
}

class GfSizeDistributionProperty : public ::testing::TestWithParam<int> {};

TEST_P(GfSizeDistributionProperty, MatchesEnumerationOnRandomTrees) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  RandomTreeOptions opts;
  opts.num_keys = 6;
  opts.max_depth = 3;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  auto worlds = EnumerateWorlds(*tree);
  ASSERT_TRUE(worlds.ok());

  int n = tree->NumLeaves();
  std::vector<double> size_prob(static_cast<size_t>(n) + 1, 0.0);
  for (const World& w : *worlds) size_prob[w.leaf_ids.size()] += w.prob;

  Poly1 f = SizeGf(*tree, n);
  for (int i = 0; i <= n; ++i) {
    EXPECT_NEAR(f.Coeff(i), size_prob[static_cast<size_t>(i)], 1e-9)
        << "size " << i;
  }
  EXPECT_NEAR(f.SumCoeffs(), 1.0, 1e-9);
}

TEST_P(GfSizeDistributionProperty, SubsetIntersectionMatchesEnumeration) {
  // Example 2: tag a random subset S with x; [x^i] = Pr(|pw ∩ S| = i).
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 1);
  RandomTreeOptions opts;
  opts.num_keys = 5;
  opts.max_depth = 3;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  auto worlds = EnumerateWorlds(*tree);
  ASSERT_TRUE(worlds.ok());

  std::set<NodeId> subset;
  for (NodeId l : tree->LeafIds()) {
    if (rng.Bernoulli(0.5)) subset.insert(l);
  }
  int cap = static_cast<int>(subset.size());
  auto leaf_poly = [&](NodeId id) {
    return subset.count(id) > 0 ? Poly1::Monomial(cap, 1, 1.0)
                                : Poly1::Constant(cap, 1.0);
  };
  auto make_const = [&](double c) { return Poly1::Constant(cap, c); };
  Poly1 f = EvalGeneratingFunction<Poly1>(*tree, leaf_poly, make_const);

  std::vector<double> expected(static_cast<size_t>(cap) + 1, 0.0);
  for (const World& w : *worlds) {
    size_t inter = 0;
    for (NodeId l : w.leaf_ids) inter += subset.count(l);
    expected[inter] += w.prob;
  }
  for (int i = 0; i <= cap; ++i) {
    EXPECT_NEAR(f.Coeff(i), expected[static_cast<size_t>(i)], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GfSizeDistributionProperty,
                         ::testing::Range(0, 15));

TEST(GeneratingFunctionTest, DeepChainDoesNotOverflowStack) {
  // A pathological 20000-deep chain of singleton XOR nodes; the iterative
  // fold must handle it.
  AndXorTree tree;
  NodeId node = tree.AddLeaf(Alt(1, 1));
  for (int i = 0; i < 20000; ++i) node = tree.AddXor({node}, {1.0});
  tree.SetRoot(node);
  ASSERT_TRUE(tree.Validate().ok());
  Poly1 f = SizeGf(tree, 1);
  EXPECT_NEAR(f.Coeff(1), 1.0, 1e-9);
}

TEST(GeneratingFunctionTest, DeepChainLiveSlotHighWaterIsConstant) {
  // Regression test for the fold-memory bug: the fold used to retain every
  // intermediate polynomial until returning, so a deep chain's peak memory
  // was O(depth × poly bytes). With consume-and-free recycling the chain
  // needs only the completed child plus its parent's accumulator — the
  // live-slot high-water mark must stay constant in the depth, not track
  // it.
  AndXorTree tree;
  NodeId node = tree.AddLeaf(Alt(1, 1));
  for (int i = 0; i < 20000; ++i) node = tree.AddXor({node}, {0.5});
  tree.SetRoot(node);
  ASSERT_TRUE(tree.Validate().ok());

  auto leaf_poly = [&](NodeId) { return Poly1::Monomial(1, 1, 1.0); };
  auto make_const = [&](double c) { return Poly1::Constant(1, c); };
  GenFunFoldStats stats;
  Poly1 f = EvalGeneratingFunction<Poly1>(tree, leaf_poly, make_const, &stats);
  EXPECT_LE(stats.max_live_slots, 2);
  EXPECT_NEAR(f.Coeff(1), std::pow(0.5, 20000.0), 1e-300);  // underflows to 0
  EXPECT_NEAR(f.Coeff(0) + f.Coeff(1), 1.0, 1e-9);
}

TEST(GeneratingFunctionTest, WideAndLiveSlotHighWaterIsConstant) {
  // A wide AND must not hold all children live either: each child is
  // multiplied into the running product as soon as it completes.
  AndXorTree tree;
  std::vector<NodeId> blocks;
  for (int i = 0; i < 500; ++i) {
    blocks.push_back(
        tree.AddXor({tree.AddLeaf(Alt(i, i))}, {0.5}));
  }
  tree.SetRoot(tree.AddAnd(std::move(blocks)));
  ASSERT_TRUE(tree.Validate().ok());

  auto leaf_poly = [&](NodeId) { return Poly1::Monomial(4, 1, 1.0); };
  auto make_const = [&](double c) { return Poly1::Constant(4, c); };
  GenFunFoldStats stats;
  Poly1 f = EvalGeneratingFunction<Poly1>(tree, leaf_poly, make_const, &stats);
  EXPECT_LE(stats.max_live_slots, 4);
  EXPECT_NEAR(f.Coeff(0), std::pow(0.5, 500.0), 1e-300);  // exact: 2^-500
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Tests for the serving layer: TreeCatalog fingerprint stability and
// content deduplication, RankDistCache hit/miss accounting, and — the load-
// bearing property — bitwise parity between cached and uncached consensus
// answers for all four Top-k metrics, across cold/warm caches and thread
// counts. The cache stores a value the engine computes deterministically,
// so memoization must be observable only in the CacheStats counters.

#include "service/query_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "core/set_consensus.h"
#include "io/table_io.h"
#include "io/tree_text.h"
#include "model/canonical.h"
#include "model/possible_worlds.h"
#include "service/rank_dist_cache.h"
#include "service/tree_catalog.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

constexpr char kTreeText[] =
    "(and (xor 0.6 (leaf key=1 score=8) 0.3 (leaf key=1 score=5))"
    " (xor 0.7 (leaf key=2 score=9))"
    " (xor 0.5 (leaf key=3 score=7) 0.5 (leaf key=3 score=6)))";

// The same tree with different whitespace: canonical fingerprints must
// collide on purpose.
constexpr char kTreeTextReformatted[] =
    "(and\n  (xor 0.6 (leaf key=1 score=8)\n       0.3 (leaf key=1 score=5))\n"
    "  (xor 0.7 (leaf key=2 score=9))\n"
    "  (xor 0.5 (leaf key=3 score=7) 0.5 (leaf key=3 score=6)))\n";

constexpr char kOtherTreeText[] =
    "(and (xor 0.5 (leaf key=4 score=3)) (xor 0.25 (leaf key=5 score=1)))";

AndXorTree RandomDeepTree(uint64_t seed, int num_keys = 8) {
  Rng rng(seed);
  RandomTreeOptions opts;
  opts.num_keys = num_keys;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  EXPECT_TRUE(tree.ok());
  return *std::move(tree);
}

// ---------------------------------------------------------------------------
// TreeCatalog
// ---------------------------------------------------------------------------

TEST(TreeCatalogTest, FingerprintIsStableAcrossLoadOrderAndFormatting) {
  TreeCatalog forward;
  ASSERT_TRUE(forward.InsertFromText("a", kTreeText).ok());
  ASSERT_TRUE(forward.InsertFromText("b", kOtherTreeText).ok());

  TreeCatalog backward;
  ASSERT_TRUE(backward.InsertFromText("b", kOtherTreeText).ok());
  ASSERT_TRUE(backward.InsertFromText("a", kTreeTextReformatted).ok());

  // Same content, regardless of insertion order or input formatting.
  EXPECT_EQ(forward.Lookup("a")->content_fp, backward.Lookup("a")->content_fp);
  EXPECT_EQ(forward.Lookup("b")->content_fp, backward.Lookup("b")->content_fp);
  EXPECT_NE(forward.Lookup("a")->content_fp, forward.Lookup("b")->content_fp);
}

TEST(TreeCatalogTest, IdenticalContentUnderTwoNamesSharesOneTree) {
  TreeCatalog catalog;
  auto first = catalog.InsertFromText("original", kTreeText);
  auto alias = catalog.InsertFromText("alias", kTreeTextReformatted);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(first->content_fp, alias->content_fp);
  // Shared immutable handle: the same allocation, not an equal copy.
  EXPECT_EQ(first->tree.get(), alias->tree.get());
  EXPECT_EQ(catalog.size(), 2u);
}

TEST(TreeCatalogTest, ReinsertIsIdempotentButConflictErrors) {
  TreeCatalog catalog;
  ASSERT_TRUE(catalog.InsertFromText("t", kTreeText).ok());
  // Identical content again: fine (idempotent re-load).
  EXPECT_TRUE(catalog.InsertFromText("t", kTreeTextReformatted).ok());
  // Different content under a served name: rejected, not replaced.
  auto conflict = catalog.InsertFromText("t", kOtherTreeText);
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(TreeCatalogTest, LookupAndValidationErrors) {
  TreeCatalog catalog;
  auto missing = catalog.Lookup("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(catalog.InsertFromText("", kTreeText).ok());
  EXPECT_FALSE(catalog.InsertFromText("bad", "(xor 2.0 (leaf key=1))").ok());
}

// The catalog's thread-safety contract, exercised with real threads (this
// is what the TSan CI job watches): concurrent inserts racing on a shared
// name, private names with identical content, and lookups, all interleaved.
TEST(TreeCatalogTest, ConcurrentInsertsAndLookupsShareOneTree) {
  TreeCatalog catalog;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&catalog, t] {
      // Everyone races to bind the shared name; first insert wins and the
      // rest are idempotent re-loads of identical content.
      auto shared = catalog.InsertFromText("shared", kTreeText);
      EXPECT_TRUE(shared.ok());
      auto mine = catalog.InsertFromText("worker" + std::to_string(t),
                                         kTreeTextReformatted);
      EXPECT_TRUE(mine.ok());
      if (shared.ok() && mine.ok()) {
        EXPECT_EQ(mine->content_fp, shared->content_fp);
      }
      EXPECT_TRUE(catalog.Lookup("shared").ok());
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(catalog.size(), static_cast<size_t>(kThreads) + 1);
  // One content fingerprint -> one shared allocation across every name.
  const AndXorTree* tree = catalog.Lookup("shared")->tree.get();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(catalog.Lookup("worker" + std::to_string(t))->tree.get(), tree);
  }
}

TEST(TreeCatalogTest, FingerprintTreeMatchesCanonicalHash) {
  auto tree = ParseTree(kTreeText);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(TreeCatalog::FingerprintTree(*tree),
            ContentFp(Fnv1a64(FormatTree(*tree, /*indent=*/false))));
}

// ---------------------------------------------------------------------------
// RankDistCache
// ---------------------------------------------------------------------------

TEST(RankDistCacheTest, CountsHitsAndMissesPerKey) {
  AndXorTree tree = *ParseTree(kTreeText);
  RankDistCache cache;
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return ComputeRankDistribution(tree, 2);
  };
  auto a = cache.GetOrCompute(StructKey(1), 2, compute);
  auto b = cache.GetOrCompute(StructKey(1), 2, compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(a.get(), b.get());  // shared handle, not a copy
  // Different k and different fingerprint are distinct entries.
  cache.GetOrCompute(StructKey(1), 3,
                     [&] { return ComputeRankDistribution(tree, 3); });
  cache.GetOrCompute(StructKey(2), 2, compute);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.coalesced, 0);
  EXPECT_EQ(stats.entries, 3);
  // Unbounded by default: entries are charged but never evicted.
  EXPECT_EQ(cache.byte_budget(), kUnboundedCacheBytes);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.bytes, a->ApproxBytes() +
                             cache.Peek(StructKey(1), 3)->ApproxBytes() +
                             cache.Peek(StructKey(2), 2)->ApproxBytes());
}

TEST(RankDistCacheTest, PeekDoesNotCountAndClearResets) {
  AndXorTree tree = *ParseTree(kTreeText);
  RankDistCache cache;
  EXPECT_EQ(cache.Peek(StructKey(1), 2), nullptr);
  auto handle =
      cache.GetOrCompute(StructKey(1), 2,
                         [&] { return ComputeRankDistribution(tree, 2); });
  EXPECT_EQ(cache.Peek(StructKey(1), 2).get(), handle.get());
  CacheStats before = cache.stats();
  EXPECT_EQ(before.hits, 0);
  EXPECT_EQ(before.misses, 1);
  cache.Clear();
  CacheStats after = cache.stats();
  EXPECT_EQ(after.misses, 0);
  EXPECT_EQ(after.entries, 0);
  EXPECT_EQ(cache.Peek(StructKey(1), 2), nullptr);
  // Handles outlive Clear (shared ownership).
  EXPECT_EQ(handle->k(), 2);
}

// The single-flight contract: several threads missing one key fold ONCE —
// the first caller computes, the rest block on the in-flight computation
// and share its allocation. Run with real threads so TSan sees the lock
// hand-offs; the compute counter is atomic so the "exactly once" claim is
// itself race-free.
TEST(RankDistCacheTest, ConcurrentGetOrComputeFoldsOncePerKey) {
  AndXorTree tree = *ParseTree(kTreeText);
  RankDistCache cache;
  constexpr int kThreads = 8;
  std::atomic<int> computes{0};
  std::vector<std::shared_ptr<const RankDistribution>> handles(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &tree, &handles, &computes, t] {
      handles[t] = cache.GetOrCompute(StructKey(7), 2, [&] {
        ++computes;
        // Widen the race window so coalescing actually happens under TSan.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return ComputeRankDistribution(tree, 2);
      });
      cache.Peek(StructKey(7), 2);
      cache.stats();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(computes.load(), 1);  // single-flight: one fold, ever
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(handles[t].get(), handles[0].get()) << "thread " << t;
  }
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1);
  // Each call counts exactly once: one miss (the computing caller), and
  // every other caller either coalesced on the flight or hit the retained
  // entry, depending on arrival time.
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits + stats.coalesced, kThreads - 1);
}

// ---------------------------------------------------------------------------
// ServiceRequestFromLine — the strict semantic mapping
// ---------------------------------------------------------------------------

Result<ServiceRequest> MapLine(const std::string& text) {
  auto line = ParseRequestLine(text);
  if (!line.ok()) return line.status();
  return ServiceRequestFromLine(*line);
}

TEST(ServiceRequestTest, MapsEveryOp) {
  auto load = MapLine("op=load name=t file=/tmp/x.sexp format=bid");
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load->op, ServiceRequest::Op::kLoad);
  EXPECT_EQ(load->load_name, "t");
  EXPECT_EQ(load->load_format, "bid");

  auto topk = MapLine("op=topk tree=t k=3 metric=kendall answer=mean");
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk->op, ServiceRequest::Op::kTopK);
  EXPECT_EQ(topk->k, 3);
  EXPECT_EQ(topk->metric, TopKMetric::kKendall);
  EXPECT_EQ(topk->answer, TopKAnswer::kMean);

  auto world = MapLine("op=world tree=t answer=median");
  ASSERT_TRUE(world.ok());
  EXPECT_EQ(world->op, ServiceRequest::Op::kWorld);
  EXPECT_TRUE(world->median_world);

  auto stats = MapLine("op=stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->op, ServiceRequest::Op::kStats);
}

TEST(ServiceRequestTest, GarbageNeverBecomesADefault) {
  // Strictness matches the PR 2 CLI convention: every one of these is an
  // error, not a silently defaulted request.
  for (const char* bad : {
           "tree=t k=2",                       // missing op
           "op=bogus",                         // unknown op
           "op=topk tree=t",                   // missing k
           "op=topk k=2",                      // missing tree
           "op=topk tree=t k=1o",              // garbage int
           "op=topk tree=t k=0",               // out of range
           "op=topk tree=t k=-3",              // out of range
           "op=topk tree=t k=9999999",         // out of range
           "op=topk tree=t k=2 metric=nope",   // unknown metric
           "op=topk tree=t k=2 answer=nope",   // unknown answer
           "op=topk tree=t k=2 metrc=kendall", // typo'd field name
           "op=world tree=t metric=jaccard",   // unsupported metric
           "op=world tree=t answer=approx",    // unknown answer for world
           "op=load name=t file=f format=xml", // unknown format
           "op=load name=t",                   // missing file
           "op=stats tree=t",                  // field stats does not take
       }) {
    EXPECT_FALSE(MapLine(bad).ok()) << "'" << bad << "' was accepted";
  }
}

// ---------------------------------------------------------------------------
// QueryScheduler — parity and dedup
// ---------------------------------------------------------------------------

class QuerySchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.InsertFromText("t", kTreeText).ok());
    // The serving path folds over the canonical orientation, so the
    // fixture pre-canonicalizes its reference tree: direct engine calls on
    // deep_ are then bitwise comparable with scheduler answers.
    deep_ = *CanonicalizeTree(RandomDeepTree(101));
    ASSERT_TRUE(catalog_.Insert("deep", deep_).ok());
  }

  static ServiceRequest TopKRequest(const std::string& tree, int k,
                                    TopKMetric metric,
                                    TopKAnswer answer = TopKAnswer::kMean) {
    ServiceRequest request;
    request.op = ServiceRequest::Op::kTopK;
    request.tree_name = tree;
    request.k = k;
    request.metric = metric;
    request.answer = answer;
    return request;
  }

  TreeCatalog catalog_;
  AndXorTree deep_;
};

// The acceptance-criteria test: for all four metrics on one catalog tree,
// answers must be bitwise identical with the cache cold, warm, and
// disabled — and equal to direct one-at-a-time engine calls.
TEST_F(QuerySchedulerTest, CachedAndUncachedAnswersAreBitwiseIdentical) {
  const int k = 3;
  const TopKMetric kMetrics[] = {TopKMetric::kSymDiff,
                                 TopKMetric::kIntersection,
                                 TopKMetric::kFootrule, TopKMetric::kKendall};
  std::vector<ServiceRequest> batch;
  for (TopKMetric metric : kMetrics) {
    batch.push_back(TopKRequest("deep", k, metric));
  }

  EngineOptions engine_options;
  engine_options.num_threads = 4;
  engine_options.use_fast_bid_path = false;
  Engine engine(engine_options);

  QueryScheduler cached(&engine, &catalog_);
  SchedulerOptions no_cache;
  no_cache.use_cache = false;
  QueryScheduler uncached(&engine, &catalog_, no_cache);

  auto cold = cached.ExecuteBatch(batch);   // cache cold: all misses
  auto warm = cached.ExecuteBatch(batch);   // cache warm: all hits
  auto direct = uncached.ExecuteBatch(batch);
  ASSERT_EQ(cold.size(), batch.size());

  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(cold[i].ok()) << "slot " << i << ": "
                              << cold[i].status().ToString();
    ASSERT_TRUE(warm[i].ok());
    ASSERT_TRUE(direct[i].ok());
    auto engine_answer =
        engine.ConsensusTopK(deep_, k, batch[i].metric, batch[i].answer);
    ASSERT_TRUE(engine_answer.ok());
    // Bitwise: same keys, and EXPECT_EQ (not NEAR) on the distance.
    EXPECT_EQ(cold[i]->keys, engine_answer->keys) << "slot " << i;
    EXPECT_EQ(cold[i]->expected_distance, engine_answer->expected_distance);
    EXPECT_EQ(warm[i]->keys, cold[i]->keys);
    EXPECT_EQ(warm[i]->expected_distance, cold[i]->expected_distance);
    EXPECT_EQ(direct[i]->keys, cold[i]->keys);
    EXPECT_EQ(direct[i]->expected_distance, cold[i]->expected_distance);
  }

  // The counters tell the sharing story: 4 queries on one (tree, k) cost
  // one fold cold (1 miss + 3 hits), zero folds warm (4 more hits).
  CacheStats stats = cached.cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 7);
  EXPECT_EQ(stats.entries, 1);
  CacheStats untouched = uncached.cache_stats();
  EXPECT_EQ(untouched.hits + untouched.misses, 0);
}

// A heterogeneous batch (two trees, mixed k / metric / answer, an unknown
// tree, a bad k) must return per-slot exactly what one-at-a-time engine
// calls return, failures isolated to their slot.
TEST_F(QuerySchedulerTest, BatchMatchesOneAtATimeEngineAnswers) {
  std::vector<ServiceRequest> batch = {
      TopKRequest("t", 2, TopKMetric::kSymDiff),
      TopKRequest("deep", 3, TopKMetric::kSymDiff, TopKAnswer::kMedian),
      TopKRequest("deep", 2, TopKMetric::kIntersection,
                  TopKAnswer::kMeanApprox),
      TopKRequest("missing", 2, TopKMetric::kSymDiff),  // unknown tree
      TopKRequest("t", 1, TopKMetric::kKendall),
      TopKRequest("deep", 2, TopKMetric::kFootrule, TopKAnswer::kMedian),
      TopKRequest("deep", 4, TopKMetric::kFootrule),
  };
  EngineOptions engine_options;
  engine_options.num_threads = 4;
  engine_options.use_fast_bid_path = false;
  Engine engine(engine_options);
  QueryScheduler scheduler(&engine, &catalog_);
  auto results = scheduler.ExecuteBatch(batch);
  ASSERT_EQ(results.size(), batch.size());

  for (size_t i = 0; i < batch.size(); ++i) {
    auto entry = catalog_.Lookup(batch[i].tree_name);
    if (!entry.ok()) {
      EXPECT_FALSE(results[i].ok()) << "slot " << i;
      continue;
    }
    auto expected = engine.ConsensusTopK(*entry->tree, batch[i].k,
                                         batch[i].metric, batch[i].answer);
    if (!expected.ok()) {
      EXPECT_FALSE(results[i].ok()) << "slot " << i;
      continue;
    }
    ASSERT_TRUE(results[i].ok())
        << "slot " << i << ": " << results[i].status().ToString();
    EXPECT_EQ(results[i]->keys, expected->keys) << "slot " << i;
    EXPECT_EQ(results[i]->expected_distance, expected->expected_distance);
  }
}

TEST_F(QuerySchedulerTest, WorldRequestsMatchEngineSetConsensus) {
  ServiceRequest mean;
  mean.op = ServiceRequest::Op::kWorld;
  mean.tree_name = "deep";
  ServiceRequest median = mean;
  median.median_world = true;
  Engine engine;
  QueryScheduler scheduler(&engine, &catalog_);
  auto results = scheduler.ExecuteBatch({mean, median});
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[1].ok());

  std::vector<double> marginal = engine.LeafMarginals(deep_);
  std::vector<NodeId> mean_world = engine.MeanWorldSymDiff(deep_);
  std::vector<KeyId> mean_keys;
  for (const TupleAlternative& t : WorldTuples(deep_, mean_world)) {
    mean_keys.push_back(t.key);
  }
  EXPECT_EQ(results[0]->keys, mean_keys);
  EXPECT_EQ(results[0]->expected_distance,
            ExpectedSymDiffDistanceFromMarginals(deep_, marginal, mean_world));
  std::vector<NodeId> median_world = engine.MedianWorldSymDiff(deep_);
  std::vector<KeyId> median_keys;
  for (const TupleAlternative& t : WorldTuples(deep_, median_world)) {
    median_keys.push_back(t.key);
  }
  EXPECT_EQ(results[1]->keys, median_keys);
}

// Scheduler answers must be bitwise identical for any engine thread count —
// the serving layer adds no scheduling dependence of its own.
TEST_F(QuerySchedulerTest, AnswersBitwiseIdenticalAcrossThreadCounts) {
  std::vector<ServiceRequest> batch = {
      TopKRequest("deep", 3, TopKMetric::kSymDiff),
      TopKRequest("deep", 3, TopKMetric::kKendall),
      TopKRequest("deep", 3, TopKMetric::kFootrule),
      TopKRequest("deep", 3, TopKMetric::kIntersection),
      TopKRequest("deep", 3, TopKMetric::kSymDiff, TopKAnswer::kMedian),
  };
  std::vector<Result<ServiceResponse>> reference;
  for (int threads : {1, 2, 4, 8}) {
    EngineOptions engine_options;
    engine_options.num_threads = threads;
    engine_options.use_fast_bid_path = false;
    Engine engine(engine_options);
    QueryScheduler scheduler(&engine, &catalog_);
    auto results = scheduler.ExecuteBatch(batch);
    if (threads == 1) {
      reference = std::move(results);
      continue;
    }
    ASSERT_EQ(results.size(), reference.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok());
      ASSERT_EQ(results[i]->keys, reference[i]->keys)
          << "slot " << i << " threads " << threads;
      ASSERT_EQ(results[i]->expected_distance,
                reference[i]->expected_distance);
    }
  }
}

// The scheduler's own concurrency claim — "concurrent ExecuteBatch calls
// are safe" — run for real: several threads fire batches through one
// scheduler (one shared engine, catalog, and cache) interleaved with
// idempotent catalog re-inserts and stats probes. Every answer must equal
// the single-threaded reference; TSan watches the lock discipline.
TEST_F(QuerySchedulerTest, ConcurrentExecuteBatchCallsAgreeWithReference) {
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.use_fast_bid_path = false;
  Engine engine(engine_options);
  QueryScheduler scheduler(&engine, &catalog_);
  const std::vector<ServiceRequest> batch = {
      TopKRequest("deep", 3, TopKMetric::kSymDiff),
      TopKRequest("deep", 3, TopKMetric::kKendall),
      TopKRequest("t", 2, TopKMetric::kFootrule),
  };
  auto reference = scheduler.ExecuteBatch(batch);
  for (const auto& slot : reference) ASSERT_TRUE(slot.ok());

  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::vector<std::vector<Result<ServiceResponse>>> observed(
      kThreads * kRounds,
      std::vector<Result<ServiceResponse>>());
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, &scheduler, &batch, &observed, t] {
      for (int round = 0; round < kRounds; ++round) {
        EXPECT_TRUE(catalog_.InsertFromText("t", kTreeText).ok());
        scheduler.cache_stats();
        observed[t * kRounds + round] = scheduler.ExecuteBatch(batch);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (const auto& results : observed) {
    ASSERT_EQ(results.size(), reference.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
      EXPECT_EQ(results[i]->keys, reference[i]->keys) << "slot " << i;
      EXPECT_EQ(results[i]->expected_distance,
                reference[i]->expected_distance);
    }
  }
  // All traffic shared the two (tree, k) folds: exactly 2 misses (single-
  // flight makes that deterministic even under the race), every other call
  // a hit or a coalesced wait, total accounted.
  CacheStats stats = scheduler.cache_stats();
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
            3 * (kThreads * kRounds + 1));
}

// Loads apply before queries in the same batch, both input formats work,
// and a load failure stays in its slot.
TEST_F(QuerySchedulerTest, LoadsApplyBeforeQueriesInTheSameBatch) {
  std::string tree_path = ::testing::TempDir() + "/service_load.sexp";
  std::string bid_path = ::testing::TempDir() + "/service_load.bid";
  ASSERT_TRUE(WriteStringToFile(tree_path, kOtherTreeText).ok());
  ASSERT_TRUE(WriteStringToFile(bid_path,
                                "1 0.6 8\n1 0.3 5\n2 0.7 9\n")
                  .ok());
  ServiceRequest query = TopKRequest("late", 1, TopKMetric::kSymDiff);
  ServiceRequest load;
  load.op = ServiceRequest::Op::kLoad;
  load.load_name = "late";
  load.load_file = tree_path;
  ServiceRequest load_bid = load;
  load_bid.load_name = "late_bid";
  load_bid.load_file = bid_path;
  load_bid.load_format = "bid";
  ServiceRequest load_missing = load;
  load_missing.load_name = "missing_file";
  load_missing.load_file = ::testing::TempDir() + "/does_not_exist.sexp";

  Engine engine;
  QueryScheduler scheduler(&engine, &catalog_);
  // The query references a tree loaded *later* in the batch.
  auto results =
      scheduler.ExecuteBatch({query, load, load_bid, load_missing});
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  ASSERT_TRUE(results[1].ok());
  EXPECT_NE(results[1]->fingerprint.value(), 0u);
  ASSERT_TRUE(results[2].ok());
  EXPECT_FALSE(results[3].ok());
  EXPECT_EQ(catalog_.size(), 4u);  // t, deep, late, late_bid
}

TEST_F(QuerySchedulerTest, StatsRequestReportsCacheCounters) {
  Engine engine;
  QueryScheduler scheduler(&engine, &catalog_);
  ServiceRequest stats;
  stats.op = ServiceRequest::Op::kStats;
  ServiceRequest world;
  world.op = ServiceRequest::Op::kWorld;
  world.tree_name = "t";
  // Stats report the post-batch state even when the line precedes queries.
  auto results = scheduler.ExecuteBatch(
      {stats, TopKRequest("t", 2, TopKMetric::kSymDiff),
       TopKRequest("t", 2, TopKMetric::kFootrule), world, world});
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(results[0]->stats.misses, 1);
  EXPECT_EQ(results[0]->stats.hits, 1);
  // The sibling cache: two world queries on one fingerprint, one marginal
  // fold.
  EXPECT_EQ(results[0]->marginals_stats.misses, 1);
  EXPECT_EQ(results[0]->marginals_stats.hits, 1);
  EXPECT_EQ(results[0]->marginals_stats.entries, 1);
  EXPECT_GT(results[0]->marginals_stats.bytes, 0);
}

// World queries share one marginal fold per content fingerprint — across
// batches, across mean/median, and in agreement with uncached execution.
TEST_F(QuerySchedulerTest, MarginalsCacheDeduplicatesWorldFolds) {
  ServiceRequest mean;
  mean.op = ServiceRequest::Op::kWorld;
  mean.tree_name = "deep";
  ServiceRequest median = mean;
  median.median_world = true;

  EngineOptions engine_options;
  engine_options.num_threads = 2;
  Engine engine(engine_options);
  QueryScheduler cached(&engine, &catalog_);
  SchedulerOptions no_cache;
  no_cache.use_cache = false;
  QueryScheduler uncached(&engine, &catalog_, no_cache);

  auto first = cached.ExecuteBatch({mean, median});
  auto second = cached.ExecuteBatch({median, mean});
  auto direct = uncached.ExecuteBatch({mean, median});
  for (auto* results : {&first, &second, &direct}) {
    for (auto& slot : *results) ASSERT_TRUE(slot.ok());
  }
  // Bitwise parity cached/warm/uncached, mean and median alike.
  EXPECT_EQ(first[0]->keys, direct[0]->keys);
  EXPECT_EQ(first[0]->expected_distance, direct[0]->expected_distance);
  EXPECT_EQ(first[1]->keys, direct[1]->keys);
  EXPECT_EQ(first[1]->expected_distance, direct[1]->expected_distance);
  EXPECT_EQ(second[1]->keys, first[0]->keys);
  EXPECT_EQ(second[1]->expected_distance, first[0]->expected_distance);
  // Four world queries, one fingerprint, one fold.
  CacheStats stats = cached.marginals_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.entries, 1);
  CacheStats untouched = uncached.marginals_stats();
  EXPECT_EQ(untouched.hits + untouched.misses, 0);
}

// ---------------------------------------------------------------------------
// Streaming execution
// ---------------------------------------------------------------------------

// The streaming contract itself: response N is emitted before request N+1
// is pulled — the property that lets a client on a pipe see answers while
// composing the next request ("the first response before the last request
// is read").
TEST_F(QuerySchedulerTest, StreamingEmitsEachResponseBeforeReadingNext) {
  Engine engine;
  QueryScheduler scheduler(&engine, &catalog_);
  std::vector<ServiceRequest> requests = {
      TopKRequest("t", 2, TopKMetric::kSymDiff),
      TopKRequest("t", 2, TopKMetric::kFootrule),
      TopKRequest("t", 3, TopKMetric::kSymDiff),
  };
  std::vector<std::string> events;
  size_t cursor = 0;
  scheduler.ExecuteStreaming(
      [&](ServiceRequest* out) {
        if (cursor == requests.size()) return false;
        events.push_back("read" + std::to_string(cursor));
        *out = requests[cursor++];
        return true;
      },
      [&](const Result<ServiceResponse>& response) {
        ASSERT_TRUE(response.ok());
        events.push_back("emit" + std::to_string(cursor - 1));
      });
  EXPECT_EQ(events, (std::vector<std::string>{"read0", "emit0", "read1",
                                              "emit1", "read2", "emit2"}));
}

// Streamed answers are bitwise the batch answers, and the folds still share
// the caches (the second symdiff k=2 request hits the entry the first one
// computed).
TEST_F(QuerySchedulerTest, StreamingAnswersMatchBatchBitwise) {
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.use_fast_bid_path = false;
  Engine engine(engine_options);
  ServiceRequest world;
  world.op = ServiceRequest::Op::kWorld;
  world.tree_name = "deep";
  std::vector<ServiceRequest> requests = {
      TopKRequest("deep", 3, TopKMetric::kSymDiff),
      TopKRequest("deep", 3, TopKMetric::kKendall),
      TopKRequest("deep", 3, TopKMetric::kSymDiff),
      world,
      world,
  };
  QueryScheduler batch_scheduler(&engine, &catalog_);
  auto batch = batch_scheduler.ExecuteBatch(requests);

  QueryScheduler stream_scheduler(&engine, &catalog_);
  std::vector<Result<ServiceResponse>> streamed;
  size_t cursor = 0;
  stream_scheduler.ExecuteStreaming(
      [&](ServiceRequest* out) {
        if (cursor == requests.size()) return false;
        *out = requests[cursor++];
        return true;
      },
      [&](const Result<ServiceResponse>& response) {
        streamed.push_back(response);
      });
  ASSERT_EQ(streamed.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(batch[i].ok());
    ASSERT_TRUE(streamed[i].ok()) << streamed[i].status().ToString();
    EXPECT_EQ(streamed[i]->keys, batch[i]->keys) << "slot " << i;
    EXPECT_EQ(streamed[i]->expected_distance, batch[i]->expected_distance);
  }
  // Fold sharing carried over: one rank-distribution fold (two k=3 symdiff
  // queries share it; kendall reuses the same (fingerprint, k) entry), one
  // marginal fold for the two world queries.
  CacheStats stats = stream_scheduler.cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 2);
  CacheStats marginals = stream_scheduler.marginals_stats();
  EXPECT_EQ(marginals.misses, 1);
  EXPECT_EQ(marginals.hits, 1);
}

// Streaming executes strictly in input order: unlike a batch, a query may
// not reference a tree loaded later in the stream, and stats report their
// point in the stream, not the post-input state.
TEST_F(QuerySchedulerTest, StreamingIsOrderSensitiveWhereBatchIsNot) {
  std::string tree_path = ::testing::TempDir() + "/stream_late.sexp";
  ASSERT_TRUE(WriteStringToFile(tree_path, kOtherTreeText).ok());
  ServiceRequest query = TopKRequest("stream_late", 1, TopKMetric::kSymDiff);
  ServiceRequest load;
  load.op = ServiceRequest::Op::kLoad;
  load.load_name = "stream_late";
  load.load_file = tree_path;
  ServiceRequest stats;
  stats.op = ServiceRequest::Op::kStats;
  std::vector<ServiceRequest> requests = {stats, query, load, query};

  Engine engine;
  // Private catalogs: the point is what each mode does with a name bound
  // mid-input, so the name must not leak from one scheduler to the other.
  TreeCatalog batch_catalog;
  TreeCatalog stream_catalog;
  // The same input as a batch: the load applies first, both queries answer,
  // and the leading stats line reports the post-batch counters.
  QueryScheduler batch_scheduler(&engine, &batch_catalog);
  auto batch = batch_scheduler.ExecuteBatch(requests);
  EXPECT_TRUE(batch[1].ok());
  EXPECT_TRUE(batch[3].ok());
  EXPECT_EQ(batch[0]->stats.misses, 1);

  QueryScheduler stream_scheduler(&engine, &stream_catalog);
  std::vector<Result<ServiceResponse>> streamed;
  size_t cursor = 0;
  stream_scheduler.ExecuteStreaming(
      [&](ServiceRequest* out) {
        if (cursor == requests.size()) return false;
        *out = requests[cursor++];
        return true;
      },
      [&](const Result<ServiceResponse>& response) {
        streamed.push_back(response);
      });
  ASSERT_EQ(streamed.size(), 4u);
  // Point-in-time stats: nothing had executed yet.
  ASSERT_TRUE(streamed[0].ok());
  EXPECT_EQ(streamed[0]->stats.misses, 0);
  // The query preceding its load fails; the one after it succeeds, with
  // answers equal to the batch's.
  EXPECT_FALSE(streamed[1].ok());
  EXPECT_EQ(streamed[1].status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(streamed[3].ok());
  EXPECT_EQ(streamed[3]->keys, batch[3]->keys);
  EXPECT_EQ(streamed[3]->expected_distance, batch[3]->expected_distance);
}

// ResponseToFields renders every op into protocol fields.
TEST_F(QuerySchedulerTest, ResponsesRenderToProtocolFields) {
  Engine engine;
  QueryScheduler scheduler(&engine, &catalog_);
  auto results =
      scheduler.ExecuteBatch({TopKRequest("t", 2, TopKMetric::kSymDiff)});
  ASSERT_TRUE(results[0].ok());
  std::string line = FormatResponseLine(ResponseToFields(*results[0]));
  EXPECT_EQ(line.find("ok\top=topk\ttree=t\tmetric=symdiff"), 0u);
  EXPECT_NE(line.find("keys="), std::string::npos);
  EXPECT_NE(line.find("expected="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics registry surfaces
// ---------------------------------------------------------------------------

// The golden-name test: the cache-counter re-export names are wire
// contract (dashboards and scrape configs key on them), so the exact set
// for each prefix is pinned here. A rename must show up as a deliberate
// edit to this list.
TEST(CacheStatsMetricsTest, ExportedNamesAreGolden) {
  for (const std::string prefix :
       {std::string("cpdb_rankdist_cache_"),
        std::string("cpdb_marginals_cache_")}) {
    CacheStats stats;
    stats.hits = 1;
    stats.misses = 2;
    stats.coalesced = 3;
    stats.entries = 4;
    stats.evictions = 5;
    stats.bytes = 6;

    MetricsSnapshot snapshot;
    AppendCacheStatsMetrics(stats, prefix, &snapshot);
    std::vector<std::pair<std::string, MetricSample::Kind>> got;
    for (const MetricSample& sample : snapshot.samples) {
      got.emplace_back(sample.name, sample.kind);
    }
    const std::vector<std::pair<std::string, MetricSample::Kind>> want = {
        {prefix + "hits_total", MetricSample::Kind::kCounter},
        {prefix + "misses_total", MetricSample::Kind::kCounter},
        {prefix + "coalesced_total", MetricSample::Kind::kCounter},
        {prefix + "evictions_total", MetricSample::Kind::kCounter},
        {prefix + "entries", MetricSample::Kind::kGauge},
        {prefix + "bytes", MetricSample::Kind::kGauge},
    };
    EXPECT_EQ(got, want) << prefix;
  }
}

// op=stats and op=metrics read the same CacheStats structs; the values
// they report must agree exactly.
TEST_F(QuerySchedulerTest, MetricsScrapeAgreesWithStatsOp) {
  Engine engine;
  QueryScheduler scheduler(&engine, &catalog_);
  std::vector<ServiceRequest> batch = {
      TopKRequest("deep", 3, TopKMetric::kSymDiff),
      TopKRequest("deep", 3, TopKMetric::kSymDiff),  // warm hit
      TopKRequest("t", 2, TopKMetric::kKendall),
  };
  ServiceRequest world;
  world.op = ServiceRequest::Op::kWorld;
  world.tree_name = "deep";
  batch.push_back(world);
  ServiceRequest stats;
  stats.op = ServiceRequest::Op::kStats;
  batch.push_back(stats);
  ServiceRequest metrics;
  metrics.op = ServiceRequest::Op::kMetrics;
  batch.push_back(metrics);

  auto results = scheduler.ExecuteBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (const auto& result : results) ASSERT_TRUE(result.ok());

  const ServiceResponse& stats_response = *results[4];
  const MetricsSnapshot& scrape = results[5]->metrics;
  EXPECT_EQ(scrape.Find("cpdb_rankdist_cache_hits_total")->value,
            stats_response.stats.hits);
  EXPECT_EQ(scrape.Find("cpdb_rankdist_cache_misses_total")->value,
            stats_response.stats.misses);
  EXPECT_EQ(scrape.Find("cpdb_rankdist_cache_entries")->value,
            stats_response.stats.entries);
  EXPECT_EQ(scrape.Find("cpdb_rankdist_cache_bytes")->value,
            stats_response.stats.bytes);
  EXPECT_EQ(scrape.Find("cpdb_marginals_cache_hits_total")->value,
            stats_response.marginals_stats.hits);
  EXPECT_EQ(scrape.Find("cpdb_marginals_cache_misses_total")->value,
            stats_response.marginals_stats.misses);

  // The request counters describe this batch, metrics op included.
  EXPECT_EQ(scrape.Find("cpdb_requests_total")->value, 6);
  EXPECT_EQ(scrape.Find("cpdb_topk_requests_total")->value, 3);
  EXPECT_EQ(scrape.Find("cpdb_world_requests_total")->value, 1);
  EXPECT_EQ(scrape.Find("cpdb_stats_requests_total")->value, 1);
  EXPECT_EQ(scrape.Find("cpdb_metrics_requests_total")->value, 1);
  EXPECT_EQ(scrape.Find("cpdb_request_errors_total")->value, 0);
  // The engine compiled at least one flat fold to answer the queries.
  EXPECT_GT(scrape.Find("cpdb_fold_compiles_total")->value, 0);
}

// trace_* fields appear exactly when the request said trace=on — never
// on a plain request, even with metrics recording enabled.
TEST_F(QuerySchedulerTest, TraceFieldsGatedByRequest) {
  Engine engine;
  QueryScheduler scheduler(&engine, &catalog_);
  ServiceRequest plain = TopKRequest("deep", 3, TopKMetric::kSymDiff);
  ServiceRequest traced = plain;
  traced.trace = true;

  auto results = scheduler.ExecuteBatch({plain, traced});
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[1].ok());
  const std::string plain_line =
      FormatResponseLine(ResponseToFields(*results[0]));
  const std::string traced_line =
      FormatResponseLine(ResponseToFields(*results[1]));
  EXPECT_EQ(plain_line.find("trace_"), std::string::npos);
  EXPECT_NE(traced_line.find("\ttrace_total_ns="), std::string::npos);
  // The answer prefix is byte-identical; trace fields are a pure suffix.
  EXPECT_EQ(traced_line.substr(0, traced_line.find("\ttrace_")),
            plain_line.substr(0, plain_line.size() - 1));
}

}  // namespace
}  // namespace cpdb

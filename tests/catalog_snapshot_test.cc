// Copyright 2026 The ConsensusDB Authors
//
// Torture tests for the catalog snapshot format (service/catalog_snapshot.h).
// Two properties are load-bearing:
//
//   * Corruption rejection: a snapshot file is untrusted input, and every
//     way of mangling one — truncation at *every* byte boundary, a zeroed
//     file, bad magic, a future format version, a flipped payload or
//     checksum byte, record counts that cannot fit the payload, embedded
//     trees that fail ParseTree or are non-canonical, fingerprints that do
//     not hash their bytes, duplicate or dangling records, non-finite
//     probabilities, trailing garbage — must come back as a clean typed
//     Status, never an abort, and never a partially mutated catalog. This
//     suite runs under ASan/UBSan in CI, so an out-of-bounds read in the
//     decoder fails the build, not just the expectation.
//
//   * Round-trip fidelity: save -> load -> save is byte-identical, loaded
//     trees fingerprint identically to the originals, and the mmap load
//     path agrees with the streaming-read path bit for bit — over
//     hand-written trees and the full random-generator families.

#include "service/catalog_snapshot.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "io/table_io.h"
#include "io/tree_text.h"
#include "model/canonical.h"
#include "service/query_scheduler.h"
#include "service/tree_catalog.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

constexpr char kTreeText[] =
    "(and (xor 0.6 (leaf key=1 score=8) 0.3 (leaf key=1 score=5))"
    " (xor 0.7 (leaf key=2 score=9))"
    " (xor 0.5 (leaf key=3 score=7) 0.5 (leaf key=3 score=6)))";

constexpr char kOtherTreeText[] =
    "(and (xor 0.5 (leaf key=4 score=3)) (xor 0.25 (leaf key=5 score=1)))";

// Format offsets (see the header-comment layout in catalog_snapshot.h).
constexpr size_t kVersionOffset = 8;
constexpr size_t kReservedOffset = 12;
constexpr size_t kTreeCountOffset = 16;
constexpr size_t kDistCountOffset = 24;

AndXorTree Tree(const std::string& text) {
  auto parsed = ParseTree(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *std::move(parsed);
}

SnapshotTree MakeTreeRecord(const std::string& name,
                            const std::string& content) {
  SnapshotTree record;
  record.name = name;
  record.content = content;
  record.content_fp = ContentFp(Fnv1a64(content));
  // A correct structural key whenever the bytes parse: corruption tests
  // that target earlier validation stages still need the later fields
  // well-formed, so the stage under test is the one that fires.
  Result<AndXorTree> parsed = ParseTree(content);
  if (parsed.ok()) {
    Result<AndXorTree> canonical = CanonicalizeTree(*parsed);
    if (canonical.ok()) {
      record.struct_key =
          StructKey(Fnv1a64(FormatTree(*canonical, /*indent=*/false)));
    }
  }
  // Encoding never consults `tree`, which is what lets these tests craft
  // records whose bytes a live catalog could not produce.
  return record;
}

SnapshotTree CatalogTreeRecord(const std::string& name,
                               const std::string& text) {
  AndXorTree tree = Tree(text);
  SnapshotTree record =
      MakeTreeRecord(name, FormatTree(tree, /*indent=*/false));
  record.tree = std::make_shared<const AndXorTree>(std::move(tree));
  return record;
}

EngineOptions TestEngineOptions() {
  EngineOptions options;
  options.num_threads = 2;
  return options;
}

ServiceRequest TopKRequest(const std::string& tree, int k) {
  ServiceRequest request;
  request.op = ServiceRequest::Op::kTopK;
  request.tree_name = tree;
  request.k = k;
  return request;
}

// A populated catalog + scheduler pair whose snapshot carries both trees
// and (when `with_distributions`) warmed rank-distribution sections.
struct LiveService {
  Engine engine{TestEngineOptions()};
  TreeCatalog catalog;
  QueryScheduler scheduler{&engine, &catalog};

  explicit LiveService(bool with_distributions) {
    EXPECT_TRUE(catalog.Insert("a", Tree(kTreeText)).ok());
    EXPECT_TRUE(catalog.Insert("b", Tree(kOtherTreeText)).ok());
    if (with_distributions) {
      EXPECT_TRUE(scheduler.ExecuteOne(TopKRequest("a", 3)).ok());
      EXPECT_TRUE(scheduler.ExecuteOne(TopKRequest("b", 2)).ok());
    }
  }

  CatalogSnapshot Snapshot(bool with_distributions) const {
    return BuildCatalogSnapshot(catalog,
                                with_distributions ? &scheduler : nullptr);
  }
};

std::string ValidBytes(bool with_distributions) {
  return EncodeCatalogSnapshot(
      LiveService(with_distributions).Snapshot(with_distributions));
}

void PokeU32(std::string* bytes, size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*bytes)[offset + static_cast<size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void PokeU64(std::string* bytes, size_t offset, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*bytes)[offset + static_cast<size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

// Re-stamps a valid checksum over the (possibly corrupted) payload, so a
// test can target validation stages *behind* the checksum: without the
// restamp, every payload edit would be caught as a checksum mismatch and
// the deeper checks would never run.
std::string Restamped(std::string bytes) {
  PokeU64(&bytes, bytes.size() - 8, Fnv1a64(bytes.data(), bytes.size() - 8));
  return bytes;
}

// The full rejection contract for one corrupt byte string: DecodeCatalogSnapshot
// returns the expected typed Status (both from memory and through both file
// load paths, which must agree byte-for-byte on the error), and a catalog
// fed through the serve path's decode-then-install sequence is untouched.
void ExpectRejected(const std::string& bytes, StatusCode code,
                    const std::string& needle, const std::string& label) {
  SCOPED_TRACE(label);
  Result<CatalogSnapshot> decoded =
      DecodeCatalogSnapshot(bytes.data(), bytes.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), code) << decoded.status().ToString();
  EXPECT_NE(decoded.status().message().find(needle), std::string::npos)
      << decoded.status().ToString();

  const std::string path = ::testing::TempDir() + "/corrupt.snap";
  ASSERT_TRUE(WriteStringToFile(path, bytes).ok());
  Result<CatalogSnapshot> read = ReadCatalogSnapshotFile(path);
  Result<CatalogSnapshot> mapped = MmapCatalogSnapshotFile(path);
  ASSERT_FALSE(read.ok());
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(read.status().code(), code);
  EXPECT_EQ(read.status().message(), decoded.status().message());
  EXPECT_EQ(mapped.status().message(), decoded.status().message());

  // The serve path decodes before touching any catalog, so a pre-populated
  // catalog and a warm cache survive a corrupt file bit-for-bit.
  Engine engine(TestEngineOptions());
  TreeCatalog catalog;
  QueryScheduler scheduler(&engine, &catalog);
  ASSERT_TRUE(catalog.Insert("existing", Tree(kTreeText)).ok());
  ASSERT_TRUE(scheduler.ExecuteOne(TopKRequest("existing", 2)).ok());
  const CacheStats before = scheduler.cache_stats();
  Result<CatalogSnapshot> loaded = ReadCatalogSnapshotFile(path);
  if (loaded.ok()) {
    ASSERT_TRUE(
        InstallCatalogSnapshot(*loaded, &catalog, &scheduler).ok());
  }
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(scheduler.cache_stats().entries, before.entries);
  EXPECT_EQ(scheduler.cache_stats().bytes, before.bytes);
}

// ---------------------------------------------------------------------------
// Corruption rejection matrix
// ---------------------------------------------------------------------------

// Every proper prefix of a valid file — including the empty one — is
// rejected. This sweeps the cursor across every field boundary in the
// format, with and without distribution sections.
TEST(CatalogSnapshotCorruptionTest, TruncationAtEveryByteIsRejected) {
  for (bool with_dists : {false, true}) {
    const std::string valid = ValidBytes(with_dists);
    ASSERT_GT(valid.size(), 40u);
    ASSERT_TRUE(
        DecodeCatalogSnapshot(valid.data(), valid.size()).ok());
    for (size_t len = 0; len < valid.size(); ++len) {
      Result<CatalogSnapshot> decoded =
          DecodeCatalogSnapshot(valid.data(), len);
      ASSERT_FALSE(decoded.ok())
          << "accepted a " << len << "-byte prefix (dists=" << with_dists
          << ")";
      // Typed, never a crash: truncation surfaces as ParseError (either
      // "truncated" below the minimum size or a checksum mismatch beyond).
      ASSERT_EQ(decoded.status().code(), StatusCode::kParseError);
    }
  }
}

TEST(CatalogSnapshotCorruptionTest, ZeroLengthAndTinyFilesAreRejected) {
  ExpectRejected("", StatusCode::kParseError, "truncated", "empty");
  ExpectRejected("CPDBSNAP", StatusCode::kParseError, "truncated",
                 "magic only");
  // An empty *file* through the read path reports the same typed error.
  const std::string path = ::testing::TempDir() + "/empty.snap";
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  for (auto load : {ReadCatalogSnapshotFile, MmapCatalogSnapshotFile}) {
    Result<CatalogSnapshot> loaded = load(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  }
}

TEST(CatalogSnapshotCorruptionTest, BadMagicIsRejected) {
  std::string bytes = ValidBytes(false);
  bytes[0] = 'X';
  ExpectRejected(bytes, StatusCode::kParseError, "bad magic", "first byte");
  // Plausible-but-wrong headers (another tool's file) are not snapshots.
  std::string other(ValidBytes(false));
  other.replace(0, 8, "BASETREE");
  ExpectRejected(other, StatusCode::kParseError, "bad magic", "other format");
}

TEST(CatalogSnapshotCorruptionTest, UnsupportedVersionsAreRefusedNotGuessed) {
  for (uint32_t version : {uint32_t{0}, kCatalogSnapshotVersion + 1,
                           uint32_t{0xffffffff}}) {
    std::string bytes = ValidBytes(true);
    PokeU32(&bytes, kVersionOffset, version);
    // Restamped: the version gate itself must fire, not the checksum.
    ExpectRejected(Restamped(std::move(bytes)), StatusCode::kInvalidArgument,
                   "not supported", "version " + std::to_string(version));
  }
}

TEST(CatalogSnapshotCorruptionTest, NonzeroReservedFieldIsRejected) {
  std::string bytes = ValidBytes(false);
  PokeU32(&bytes, kReservedOffset, 7);
  ExpectRejected(Restamped(std::move(bytes)), StatusCode::kParseError,
                 "reserved", "reserved field");
}

TEST(CatalogSnapshotCorruptionTest, AnyFlippedByteFailsTheChecksum) {
  const std::string valid = ValidBytes(true);
  // A sample of positions across header, tree records, distribution
  // records, and the checksum itself (flipping the stored checksum must
  // fail exactly like flipping the payload it vouches for).
  for (size_t offset :
       {kTreeCountOffset, size_t{40}, valid.size() / 2, valid.size() - 20,
        valid.size() - 8, valid.size() - 1}) {
    std::string bytes = valid;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
    ExpectRejected(bytes, StatusCode::kParseError, "checksum mismatch",
                   "flip at " + std::to_string(offset));
  }
}

TEST(CatalogSnapshotCorruptionTest, EntryCountsOverflowingPayloadAreRejected) {
  for (uint64_t count :
       {uint64_t{1000000}, uint64_t{1} << 60, ~uint64_t{0}}) {
    std::string trees = ValidBytes(false);
    PokeU64(&trees, kTreeCountOffset, count);
    ExpectRejected(Restamped(std::move(trees)), StatusCode::kParseError,
                   "cannot fit", "tree count " + std::to_string(count));

    std::string dists = ValidBytes(false);
    PokeU64(&dists, kDistCountOffset, count);
    ExpectRejected(Restamped(std::move(dists)), StatusCode::kParseError,
                   "cannot fit", "dist count " + std::to_string(count));
  }
}

TEST(CatalogSnapshotCorruptionTest, TrailingGarbageIsRejectedEvenRestamped) {
  // Without a restamp the appended bytes shift where the checksum is read
  // from, so the checksum stage catches it...
  std::string naive = ValidBytes(false) + "JUNK";
  ExpectRejected(naive, StatusCode::kParseError, "checksum mismatch",
                 "appended after checksum");
  // ...and an adversary who re-stamps a valid checksum over the garbage is
  // caught by the cursor-must-land-on-the-checksum rule.
  std::string restamped = ValidBytes(false);
  restamped.insert(restamped.size() - 8, "JUNK");
  ExpectRejected(Restamped(std::move(restamped)), StatusCode::kParseError,
                 "trailing garbage", "garbage before checksum");
}

TEST(CatalogSnapshotCorruptionTest, EmbeddedTreeThatFailsParseIsRejected) {
  CatalogSnapshot snapshot;
  snapshot.trees.push_back(MakeTreeRecord("bad", "(and (xor 0.5"));
  // The fingerprint honestly hashes the garbage, so the parse stage — not
  // the fingerprint stage — must be the one that fires.
  ExpectRejected(EncodeCatalogSnapshot(snapshot), StatusCode::kParseError,
                 "does not parse", "unparsable tree");
}

TEST(CatalogSnapshotCorruptionTest, NonCanonicalTreeTextIsRejected) {
  // kTreeText parses fine but is the *indented-author* form; the canonical
  // form is FormatTree's single line. Accepting it would let a
  // hand-crafted snapshot plant a (fingerprint, canonical) pair that
  // disagrees with what InsertCanonical requires.
  AndXorTree tree = Tree(kTreeText);
  const std::string canonical = FormatTree(tree, /*indent=*/false);
  const std::string indented = FormatTree(tree, /*indent=*/true);
  ASSERT_NE(canonical, indented);
  CatalogSnapshot snapshot;
  snapshot.trees.push_back(MakeTreeRecord("t", indented));
  ExpectRejected(EncodeCatalogSnapshot(snapshot), StatusCode::kParseError,
                 "canonical form", "indented serialization");
}

TEST(CatalogSnapshotCorruptionTest, FingerprintNotHashingItsBytesIsRejected) {
  CatalogSnapshot snapshot;
  snapshot.trees.push_back(CatalogTreeRecord("t", kTreeText));
  snapshot.trees[0].content_fp =
      ContentFp(snapshot.trees[0].content_fp.value() ^ 1);
  ExpectRejected(EncodeCatalogSnapshot(snapshot), StatusCode::kParseError,
                 "does not hash", "flipped fingerprint");
}

TEST(CatalogSnapshotCorruptionTest, ForgedStructuralKeyIsRejected) {
  // A v2 record whose stored structural key is not the hash of the
  // canonical re-orientation: accepting it would route the binding to the
  // wrong shard and the wrong cache lines, so the decoder recomputes and
  // compares.
  CatalogSnapshot snapshot;
  snapshot.trees.push_back(CatalogTreeRecord("t", kTreeText));
  snapshot.trees[0].struct_key =
      StructKey(snapshot.trees[0].struct_key.value() ^ 1);
  ExpectRejected(EncodeCatalogSnapshot(snapshot), StatusCode::kParseError,
                 "structural key", "flipped structural key");
}

TEST(CatalogSnapshotCorruptionTest, DuplicateAndEmptyNamesAreRejected) {
  CatalogSnapshot duplicate;
  duplicate.trees.push_back(CatalogTreeRecord("t", kTreeText));
  duplicate.trees.push_back(CatalogTreeRecord("t", kOtherTreeText));
  ExpectRejected(EncodeCatalogSnapshot(duplicate), StatusCode::kParseError,
                 "duplicate catalog name", "duplicate name");

  CatalogSnapshot empty;
  empty.trees.push_back(CatalogTreeRecord("", kTreeText));
  ExpectRejected(EncodeCatalogSnapshot(empty), StatusCode::kParseError,
                 "must not be empty", "empty name");
}

TEST(CatalogSnapshotCorruptionTest, DistributionRecordDefectsAreRejected) {
  LiveService live(/*with_distributions=*/true);
  CatalogSnapshot valid = live.Snapshot(true);
  ASSERT_FALSE(valid.distributions.empty());

  // Dangling: a distribution whose fingerprint no tree record carries.
  CatalogSnapshot dangling = valid;
  dangling.distributions[0].struct_key =
      StructKey(dangling.distributions[0].struct_key.value() ^ 1);
  ExpectRejected(EncodeCatalogSnapshot(dangling), StatusCode::kParseError,
                 "no tree record", "dangling structural key");

  // Duplicate (fingerprint, k).
  CatalogSnapshot duplicate = valid;
  duplicate.distributions.push_back(duplicate.distributions[0]);
  ExpectRejected(EncodeCatalogSnapshot(duplicate), StatusCode::kParseError,
                 "duplicate (structural key, k)", "duplicate dist");

  // Non-finite and out-of-range probabilities.
  for (double bad : {std::nan(""), 2.0, -0.5}) {
    RankDistributionBuilder builder(2);
    for (KeyId key : valid.trees[0].tree->Keys()) {
      builder.EnsureKey(key);
      builder.Add(key, 1, bad);
    }
    CatalogSnapshot poisoned;
    poisoned.trees.push_back(valid.trees[0]);
    SnapshotDistribution dist;
    dist.struct_key = valid.trees[0].struct_key;
    dist.k = 2;
    dist.dist = std::make_shared<const RankDistribution>(
        std::move(builder).Build());
    poisoned.distributions.push_back(std::move(dist));
    ExpectRejected(EncodeCatalogSnapshot(poisoned), StatusCode::kParseError,
                   "not a probability", "bad probability");
  }

  // A distribution whose key set disagrees with its tree's keys.
  RankDistributionBuilder builder(2);
  builder.EnsureKey(999);
  CatalogSnapshot mismatched;
  mismatched.trees.push_back(valid.trees[0]);
  SnapshotDistribution wrong_keys;
  wrong_keys.struct_key = valid.trees[0].struct_key;
  wrong_keys.k = 2;
  wrong_keys.dist =
      std::make_shared<const RankDistribution>(std::move(builder).Build());
  mismatched.distributions.push_back(std::move(wrong_keys));
  ExpectRejected(EncodeCatalogSnapshot(mismatched), StatusCode::kParseError,
                 "do not match", "key set mismatch");

  // k = 0 (a builder can produce it; the format must not accept it).
  RankDistributionBuilder zero_k(0);
  CatalogSnapshot zero;
  zero.trees.push_back(valid.trees[0]);
  SnapshotDistribution zero_dist;
  zero_dist.struct_key = valid.trees[0].struct_key;
  zero_dist.k = 0;
  zero_dist.dist =
      std::make_shared<const RankDistribution>(std::move(zero_k).Build());
  zero.distributions.push_back(std::move(zero_dist));
  ExpectRejected(EncodeCatalogSnapshot(zero), StatusCode::kParseError,
                 "out of range", "k=0");
}

// A missing path is an error, not an empty snapshot — the warm-restart
// contract (a restart that silently comes up cold would hide the defect
// until traffic notices the latency).
TEST(CatalogSnapshotCorruptionTest, MissingFileIsATypedError) {
  const std::string path = ::testing::TempDir() + "/does_not_exist.snap";
  for (auto load : {ReadCatalogSnapshotFile, MmapCatalogSnapshotFile}) {
    Result<CatalogSnapshot> loaded = load(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  }
}

// ---------------------------------------------------------------------------
// Round-trip fidelity
// ---------------------------------------------------------------------------

TEST(CatalogSnapshotRoundTripTest, EmptySnapshotRoundTrips) {
  const std::string bytes = EncodeCatalogSnapshot(CatalogSnapshot{});
  EXPECT_EQ(bytes.size(), 40u);  // header + checksum, nothing else
  Result<CatalogSnapshot> decoded =
      DecodeCatalogSnapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->trees.empty());
  EXPECT_TRUE(decoded->distributions.empty());
  EXPECT_EQ(EncodeCatalogSnapshot(*decoded), bytes);
}

TEST(CatalogSnapshotRoundTripTest, EncodingIsIndependentOfRecordOrder) {
  CatalogSnapshot forward;
  forward.trees.push_back(CatalogTreeRecord("a", kTreeText));
  forward.trees.push_back(CatalogTreeRecord("b", kOtherTreeText));
  CatalogSnapshot reversed;
  reversed.trees.push_back(CatalogTreeRecord("b", kOtherTreeText));
  reversed.trees.push_back(CatalogTreeRecord("a", kTreeText));
  EXPECT_EQ(EncodeCatalogSnapshot(forward), EncodeCatalogSnapshot(reversed));
}

// The core property, over every generator family: save -> load -> save is
// byte-identical, fingerprints are preserved, and installing the loaded
// snapshot reproduces the catalog exactly.
TEST(CatalogSnapshotRoundTripTest, GeneratedTreesSurviveSaveLoadSave) {
  for (uint64_t seed : {3u, 17u, 71u, 204u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    RandomTreeOptions opts;
    opts.num_keys = 10;
    opts.max_depth = 3;

    Engine engine(TestEngineOptions());
    TreeCatalog catalog;
    QueryScheduler scheduler(&engine, &catalog);
    auto insert = [&](const std::string& name, Result<AndXorTree> tree) {
      ASSERT_TRUE(tree.ok()) << tree.status().ToString();
      ASSERT_TRUE(catalog.Insert(name, *std::move(tree)).ok());
    };
    insert("deep", RandomAndXorTree(opts, &rng));
    insert("bid", RandomBid(opts, &rng));
    insert("ti", RandomTupleIndependent(8, &rng));
    insert("fixed", Tree(kTreeText));
    // Warm the cache so the snapshot carries distribution sections too.
    for (const std::string& name : {"deep", "bid", "ti", "fixed"}) {
      ASSERT_TRUE(scheduler.ExecuteOne(TopKRequest(name, 3)).ok());
    }

    const CatalogSnapshot original = BuildCatalogSnapshot(catalog, &scheduler);
    ASSERT_EQ(original.trees.size(), 4u);
    ASSERT_EQ(original.distributions.size(), 4u);
    const std::string bytes = EncodeCatalogSnapshot(original);

    // load -> save: byte identity, from memory and through both file paths.
    Result<CatalogSnapshot> decoded =
        DecodeCatalogSnapshot(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(EncodeCatalogSnapshot(*decoded), bytes);

    const std::string path = ::testing::TempDir() + "/roundtrip.snap";
    ASSERT_TRUE(WriteCatalogSnapshotFile(path, original).ok());
    Result<CatalogSnapshot> read = ReadCatalogSnapshotFile(path);
    Result<CatalogSnapshot> mapped = MmapCatalogSnapshotFile(path);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_EQ(EncodeCatalogSnapshot(*read), bytes);
    EXPECT_EQ(EncodeCatalogSnapshot(*mapped), bytes);

    // Every loaded tree re-fingerprints to the original value — the loaded
    // catalog's identity map is the cold catalog's by construction.
    for (size_t i = 0; i < decoded->trees.size(); ++i) {
      EXPECT_EQ(decoded->trees[i].content_fp,
                TreeCatalog::FingerprintTree(*decoded->trees[i].tree));
      EXPECT_EQ(decoded->trees[i].content_fp, original.trees[i].content_fp);
      EXPECT_EQ(decoded->trees[i].struct_key, original.trees[i].struct_key);
      EXPECT_EQ(decoded->trees[i].name, original.trees[i].name);
    }

    // Installing into a fresh catalog + scheduler reproduces the state:
    // same entries, and a snapshot saved from the restored service is the
    // same file again (save -> load -> install -> save, still identical).
    Engine engine2(TestEngineOptions());
    TreeCatalog restored;
    QueryScheduler scheduler2(&engine2, &restored);
    ASSERT_TRUE(
        InstallCatalogSnapshot(*decoded, &restored, &scheduler2).ok());
    EXPECT_EQ(restored.size(), catalog.size());
    EXPECT_EQ(EncodeCatalogSnapshot(BuildCatalogSnapshot(restored,
                                                         &scheduler2)),
              bytes);
  }
}

// Install reuses InsertCanonical, so its conflict semantics are the
// catalog's own: identical content re-installs idempotently; a name bound
// to different content fails with AlreadyExists.
TEST(CatalogSnapshotRoundTripTest, InstallSemanticsMatchLineByLineLoads) {
  LiveService live(/*with_distributions=*/false);
  const CatalogSnapshot snapshot = live.Snapshot(false);

  // Idempotent onto itself.
  EXPECT_TRUE(
      InstallCatalogSnapshot(snapshot, &live.catalog, nullptr).ok());
  EXPECT_EQ(live.catalog.size(), 2u);

  // Rebind conflict: the same error Insert reports, byte for byte.
  TreeCatalog conflicted;
  ASSERT_TRUE(conflicted.Insert("a", Tree(kOtherTreeText)).ok());
  Status install =
      InstallCatalogSnapshot(snapshot, &conflicted, nullptr);
  Result<CatalogEntry> direct = conflicted.Insert("a", Tree(kTreeText));
  ASSERT_FALSE(install.ok());
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(install.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(install.message(), direct.status().message());
}

// Seeded distributions are bitwise the ones the engine would compute: a
// warm cache probe returns a distribution whose every (key, i) probability
// equals a fresh engine fold's.
TEST(CatalogSnapshotRoundTripTest, LoadedDistributionsAreBitwiseExact) {
  LiveService live(/*with_distributions=*/true);
  const std::string bytes = EncodeCatalogSnapshot(live.Snapshot(true));
  Result<CatalogSnapshot> decoded =
      DecodeCatalogSnapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->distributions.size(), 2u);
  for (const SnapshotDistribution& dist : decoded->distributions) {
    std::shared_ptr<const RankDistribution> retained;
    for (const auto& entry : live.scheduler.RetainedRankDistributions()) {
      if (entry.struct_key == dist.struct_key && entry.k == dist.k) {
        retained = entry.dist;
      }
    }
    ASSERT_NE(retained, nullptr);
    ASSERT_EQ(dist.dist->keys(), retained->keys());
    ASSERT_EQ(dist.dist->k(), retained->k());
    for (KeyId key : retained->keys()) {
      for (int i = 1; i <= retained->k(); ++i) {
        // Bitwise: EXPECT_EQ on doubles, never NEAR.
        EXPECT_EQ(dist.dist->PrRankEq(key, i), retained->PrRankEq(key, i));
        EXPECT_EQ(dist.dist->PrRankLe(key, i), retained->PrRankLe(key, i));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// v1 compatibility
// ---------------------------------------------------------------------------

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xffffffffULL));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

// Encodes the pre-structural-key v1 layout: tree records carry no struct
// key, and distribution records are addressed by content fingerprint.
std::string EncodeV1Snapshot(
    const std::vector<std::pair<std::string, std::string>>& trees,
    const std::vector<std::pair<std::string, const RankDistribution*>>&
        dists_by_text,
    int k) {
  std::string out;
  out.append(kCatalogSnapshotMagic, sizeof(kCatalogSnapshotMagic));
  AppendU32(&out, 1);  // version
  AppendU32(&out, 0);  // reserved
  AppendU64(&out, trees.size());
  AppendU64(&out, dists_by_text.size());
  for (const auto& [name, text] : trees) {
    AppendU32(&out, static_cast<uint32_t>(name.size()));
    out.append(name);
    AppendU64(&out, Fnv1a64(text));
    AppendU64(&out, text.size());
    out.append(text);
  }
  for (const auto& [text, dist] : dists_by_text) {
    AppendU64(&out, Fnv1a64(text));
    AppendU32(&out, static_cast<uint32_t>(k));
    AppendU64(&out, dist->keys().size());
    for (KeyId key : dist->keys()) {
      AppendU32(&out, static_cast<uint32_t>(key));
      for (int i = 1; i <= k; ++i) {
        double pr = dist->PrRankEq(key, i);
        uint64_t bits = 0;
        std::memcpy(&bits, &pr, sizeof(bits));
        AppendU64(&out, bits);
      }
    }
  }
  AppendU64(&out, Fnv1a64(out.data(), out.size()));
  return out;
}

// A v1 file loads through the same decode + InsertCanonical seam, with
// structural keys recomputed from the stored content. Distributions keyed
// by content fingerprint remap to their tree's StructKey only when the
// stored orientation is already canonical; a non-canonical orientation's
// fold is dropped, because the re-keyed cache serves only canonical-
// orientation folds.
TEST(CatalogSnapshotV1CompatTest, V1FilesLoadWithRecomputedKeys) {
  // Two orientations of one shape: exactly one is the canonical one.
  AndXorTree ab = Tree(
      "(and (xor 0.6 (leaf key=1 score=8) 0.3 (leaf key=1 score=5))"
      " (xor 0.7 (leaf key=2 score=9)))");
  AndXorTree ba = Tree(
      "(and (xor 0.7 (leaf key=2 score=9))"
      " (xor 0.6 (leaf key=1 score=8) 0.3 (leaf key=1 score=5)))");
  const std::string ab_text = FormatTree(ab, /*indent=*/false);
  const std::string ba_text = FormatTree(ba, /*indent=*/false);
  ASSERT_NE(ab_text, ba_text);
  const std::string canon_text =
      FormatTree(*CanonicalizeTree(ab), /*indent=*/false);
  ASSERT_EQ(canon_text, FormatTree(*CanonicalizeTree(ba), /*indent=*/false));
  const std::string other_text = ab_text == canon_text ? ba_text : ab_text;
  const StructKey shape_key(Fnv1a64(canon_text));

  Engine dist_engine(TestEngineOptions());
  const RankDistribution canon_dist =
      dist_engine.ComputeRankDistribution(Tree(canon_text), 2);
  const RankDistribution other_dist =
      dist_engine.ComputeRankDistribution(Tree(other_text), 2);
  const std::string bytes = EncodeV1Snapshot(
      {{"canon", canon_text}, {"perm", other_text}},
      {{canon_text, &canon_dist}, {other_text, &other_dist}}, /*k=*/2);

  Result<CatalogSnapshot> decoded =
      DecodeCatalogSnapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->trees.size(), 2u);
  for (const SnapshotTree& record : decoded->trees) {
    // Content identity is preserved verbatim; the structural key is
    // recomputed, and both orientations collapse to one shape.
    EXPECT_EQ(record.content_fp, ContentFp(Fnv1a64(record.content)));
    EXPECT_EQ(record.struct_key, shape_key);
  }
  // Only the canonical orientation's fold survives the re-keying.
  ASSERT_EQ(decoded->distributions.size(), 1u);
  EXPECT_EQ(decoded->distributions[0].struct_key, shape_key);
  EXPECT_EQ(decoded->distributions[0].k, 2);

  // Installing lands both names on one shared shape, with the persisted
  // fold pre-seeded for it.
  Engine engine(TestEngineOptions());
  TreeCatalog catalog;
  QueryScheduler scheduler(&engine, &catalog);
  ASSERT_TRUE(InstallCatalogSnapshot(*decoded, &catalog, &scheduler).ok());
  const CatalogCounts counts = catalog.Counts();
  EXPECT_EQ(counts.names, 2);
  EXPECT_EQ(counts.contents, 2);
  EXPECT_EQ(counts.shapes, 1);
  EXPECT_EQ(scheduler.cache_stats().entries, 1);

  // Re-saving writes the current version; the upgraded file round-trips
  // byte-identically from then on.
  const std::string upgraded =
      EncodeCatalogSnapshot(BuildCatalogSnapshot(catalog, &scheduler));
  Result<CatalogSnapshot> reloaded =
      DecodeCatalogSnapshot(upgraded.data(), upgraded.size());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(EncodeCatalogSnapshot(*reloaded), upgraded);
}

// v1 files get the same adversarial treatment as v2: a fingerprint that
// does not hash its bytes, or a dangling distribution, is rejected with
// the same typed errors.
TEST(CatalogSnapshotV1CompatTest, CorruptV1FilesAreRejected) {
  AndXorTree tree = Tree(kTreeText);
  const std::string text = FormatTree(tree, /*indent=*/false);
  Engine dist_engine(TestEngineOptions());
  const RankDistribution dist = dist_engine.ComputeRankDistribution(tree, 2);

  std::string forged_fp =
      EncodeV1Snapshot({{"t", text}}, {}, /*k=*/2);
  // Flip a fingerprint bit (offset: header 32 + u32 name len 4 + name).
  const size_t fp_offset = 32 + 4 + 1;
  forged_fp[fp_offset] = static_cast<char>(forged_fp[fp_offset] ^ 1);
  ExpectRejected(Restamped(std::move(forged_fp)), StatusCode::kParseError,
                 "does not hash", "v1 forged fingerprint");

  const std::string missing_tree =
      EncodeV1Snapshot({}, {{text, &dist}}, /*k=*/2);
  ExpectRejected(missing_tree, StatusCode::kParseError, "no tree record",
                 "v1 dangling fingerprint");
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// The FNV-1a fingerprint hash must match the published reference vectors —
// catalog fingerprints are meant to be stable across processes, platforms,
// and library versions, so these are exact pinned values, not properties.

#include "common/hash.h"

#include <gtest/gtest.h>

#include <string>

namespace cpdb {
namespace {

TEST(HashTest, MatchesPublishedFnv1aVectors) {
  // Reference values from the FNV specification test suite.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, ChainingEqualsConcatenation) {
  const std::string a = "(and (xor 0.3";
  const std::string b = " (leaf key=1 score=8)))";
  EXPECT_EQ(Fnv1a64(b.data(), b.size(), Fnv1a64(a)), Fnv1a64(a + b));
}

TEST(HashTest, SensitiveToEveryByte) {
  EXPECT_NE(Fnv1a64("tree-a"), Fnv1a64("tree-b"));
  EXPECT_NE(Fnv1a64("ab"), Fnv1a64("ba"));
  EXPECT_NE(Fnv1a64(std::string("a\0b", 3)), Fnv1a64(std::string("ab", 2)));
}

TEST(HashTest, HexRenderingIsFixedWidthLowerCase) {
  EXPECT_EQ(HashToHex(0), "0000000000000000");
  EXPECT_EQ(HashToHex(0xcbf29ce484222325ULL), "cbf29ce484222325");
  EXPECT_EQ(HashToHex(0xFFFFFFFFFFFFFFFFULL), "ffffffffffffffff");
}

}  // namespace
}  // namespace cpdb

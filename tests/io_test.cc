// Copyright 2026 The ConsensusDB Authors

#include <gtest/gtest.h>

#include "common/rng.h"
#include "io/table_io.h"
#include "io/tree_text.h"
#include "model/possible_worlds.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

TEST(TreeTextTest, ParsesLeaf) {
  auto tree = ParseTree("(leaf key=3 score=2.5 label=1)");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->NumLeaves(), 1);
  const TupleAlternative& alt = tree->node(tree->LeafIds()[0]).leaf;
  EXPECT_EQ(alt.key, 3);
  EXPECT_EQ(alt.score, 2.5);
  EXPECT_EQ(alt.label, 1);
}

TEST(TreeTextTest, ParsesNestedStructure) {
  auto tree = ParseTree(
      "(and (xor 0.3 (leaf key=1 score=8) 0.5 (leaf key=1 score=2))"
      " (xor 0.9 (leaf key=2 score=5)))");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->NumLeaves(), 3);
  EXPECT_NEAR(tree->KeyMarginal(1), 0.8, 1e-12);
  EXPECT_NEAR(tree->KeyMarginal(2), 0.9, 1e-12);
}

TEST(TreeTextTest, RejectsMalformedInput) {
  EXPECT_EQ(ParseTree("").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseTree("(leaf)").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseTree("(leaf key=1").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseTree("(blah key=1)").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseTree("(and)").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseTree("(xor (leaf key=1 score=1))").status().code(),
            StatusCode::kParseError);  // missing probability
  EXPECT_EQ(ParseTree("(leaf key=1 score=abc)").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseTree("(leaf key=1 score=1) extra").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseTree("(leaf wat=1 key=2)").status().code(),
            StatusCode::kParseError);
}

TEST(TreeTextTest, RejectsNonFiniteNumbers) {
  // strtod accepts "inf"/"nan" spellings and overflows 1e999 to infinity;
  // every one of these must fail with a clean ParseError instead of
  // smuggling a non-finite value into a validated tree (a NaN score or
  // probability poisons every downstream fold).
  for (const char* bad : {
           "(leaf key=1 score=inf)",
           "(leaf key=1 score=-inf)",
           "(leaf key=1 score=infinity)",
           "(leaf key=1 score=nan)",
           "(leaf key=1 score=NaN)",
           "(leaf key=1 score=1e999)",   // overflow -> HUGE_VAL
           "(leaf key=1 score=-1e999)",
           "(xor inf (leaf key=1 score=1))",
           "(xor nan (leaf key=1 score=1))",
           "(xor 1e999 (leaf key=1 score=1))",
           "(leaf key=nan score=1)",
       }) {
    auto result = ParseTree(bad);
    ASSERT_FALSE(result.ok()) << "'" << bad << "' was accepted";
    EXPECT_EQ(result.status().code(), StatusCode::kParseError) << bad;
    EXPECT_NE(result.status().message().find("finite"), std::string::npos)
        << bad << ": " << result.status().ToString();
  }
  // Large-but-finite and tiny (underflowing) magnitudes remain legal: they
  // are representable approximations, not poison.
  EXPECT_TRUE(ParseTree("(leaf key=1 score=1e308)").ok());
  EXPECT_TRUE(ParseTree("(leaf key=1 score=1e-999)").ok());
}

TEST(TreeTextTest, RejectsSemanticViolations) {
  // Parsing succeeds syntactically but Validate() catches the constraint.
  EXPECT_FALSE(
      ParseTree("(and (leaf key=1 score=1) (leaf key=1 score=2))").ok());
  EXPECT_FALSE(
      ParseTree("(xor 0.7 (leaf key=1 score=1) 0.7 (leaf key=1 score=2))").ok());
}

TEST(TreeTextTest, RoundTripsRandomTrees) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 1000);
    RandomTreeOptions opts;
    opts.num_keys = 6;
    opts.max_depth = 3;
    auto tree = RandomAndXorTree(opts, &rng);
    ASSERT_TRUE(tree.ok());
    for (bool indent : {false, true}) {
      std::string text = FormatTree(*tree, indent);
      auto reparsed = ParseTree(text);
      ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
      // Structural equality via the possible-world distribution: the two
      // trees must induce the same world probabilities over (key, score).
      auto w1 = EnumerateWorlds(*tree);
      auto w2 = EnumerateWorlds(*reparsed);
      ASSERT_TRUE(w1.ok());
      ASSERT_TRUE(w2.ok());
      ASSERT_EQ(w1->size(), w2->size());
      double total1 = 0.0, total2 = 0.0;
      for (const World& w : *w1) total1 += w.prob;
      for (const World& w : *w2) total2 += w.prob;
      EXPECT_NEAR(total1, total2, 1e-9);
    }
  }
}

TEST(BidTableTest, ParsesBlocksGroupedByKey) {
  auto blocks = ParseBidTable(
      "# comment line\n"
      "1 0.3 8.0\n"
      "2 0.9 5.0 4\n"
      "1 0.5 2.0\n");
  ASSERT_TRUE(blocks.ok()) << blocks.status().ToString();
  ASSERT_EQ(blocks->size(), 2u);
  EXPECT_EQ((*blocks)[0].size(), 2u);  // key 1 has two alternatives
  EXPECT_EQ((*blocks)[0][0].alt.key, 1);
  EXPECT_EQ((*blocks)[0][1].alt.score, 2.0);
  EXPECT_EQ((*blocks)[1][0].alt.label, 4);
}

TEST(BidTableTest, RejectsBadInput) {
  EXPECT_FALSE(ParseBidTable("").ok());
  EXPECT_FALSE(ParseBidTable("1 0.5\n").ok());            // missing score
  EXPECT_FALSE(ParseBidTable("1 1.5 2.0\n").ok());        // prob > 1
  EXPECT_FALSE(ParseBidTable("1 0.5 2.0 3 junk\n").ok()); // trailing field
  EXPECT_FALSE(ParseBidTable("1 0.5 2.0\n1 0.5 2.0\n").ok());  // duplicate
  EXPECT_FALSE(ParseBidTable("1 0.6 2.0\n1 0.6 3.0\n").ok());  // mass > 1
  // Non-finite tokens: some standard libraries' stream extraction accepts
  // "inf"/"nan" spellings (libc++) where others fail the extraction
  // (libstdc++) — either way these must be ParseError, and a NaN
  // probability must not slip past the [0,1] range check.
  for (const char* bad : {"1 nan 5\n", "1 inf 5\n", "1 0.5 nan\n",
                          "1 0.5 inf\n", "1 0.5 -inf\n"}) {
    auto result = ParseBidTable(bad);
    ASSERT_FALSE(result.ok()) << "'" << bad << "' was accepted";
    EXPECT_EQ(result.status().code(), StatusCode::kParseError) << bad;
  }
}

TEST(BidTableTest, RoundTrip) {
  Rng rng(77);
  RandomTreeOptions opts;
  opts.num_keys = 8;
  std::vector<Block> blocks = RandomBidBlocks(opts, &rng);
  auto reparsed = ParseBidTable(FormatBidTable(blocks));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->size(), blocks.size());
  for (size_t b = 0; b < blocks.size(); ++b) {
    ASSERT_EQ((*reparsed)[b].size(), blocks[b].size());
    for (size_t a = 0; a < blocks[b].size(); ++a) {
      EXPECT_EQ((*reparsed)[b][a].alt.key, blocks[b][a].alt.key);
      EXPECT_NEAR((*reparsed)[b][a].prob, blocks[b][a].prob, 1e-6);
      EXPECT_NEAR((*reparsed)[b][a].alt.score, blocks[b][a].alt.score, 1e-6);
    }
  }
}

TEST(FileIoTest, WriteAndReadBack) {
  std::string path = ::testing::TempDir() + "/cpdb_io_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld\n").ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello\nworld\n");
  EXPECT_EQ(ReadFileToString("/nonexistent/path").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace cpdb

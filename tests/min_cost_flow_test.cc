// Copyright 2026 The ConsensusDB Authors

#include "matching/min_cost_flow.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matching/hungarian.h"

namespace cpdb {
namespace {

TEST(MinCostFlowTest, SingleEdge) {
  MinCostFlow flow(2);
  int e = flow.AddEdge(0, 1, 5, 2.0);
  auto sol = flow.Solve(0, 1);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->flow, 5);
  EXPECT_DOUBLE_EQ(sol->cost, 10.0);
  EXPECT_EQ(flow.Flow(e), 5);
}

TEST(MinCostFlowTest, PrefersCheaperParallelPath) {
  MinCostFlow flow(2);
  int cheap = flow.AddEdge(0, 1, 3, 1.0);
  int pricey = flow.AddEdge(0, 1, 3, 4.0);
  auto sol = flow.Solve(0, 1, 4);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->flow, 4);
  EXPECT_DOUBLE_EQ(sol->cost, 3.0 * 1.0 + 1.0 * 4.0);
  EXPECT_EQ(flow.Flow(cheap), 3);
  EXPECT_EQ(flow.Flow(pricey), 1);
}

TEST(MinCostFlowTest, ReroutesThroughResidualEdges) {
  // Classic diamond where the min-cost solution must cancel an earlier
  // greedy path: 0->1 (cost 1), 0->2 (cost 2), 1->3 (cost 2), 2->3 (cost 1),
  // 1->2 (cost 0, cap 1). Pushing 2 units optimally costs 6.
  MinCostFlow flow(4);
  flow.AddEdge(0, 1, 1, 1.0);
  flow.AddEdge(0, 2, 1, 2.0);
  flow.AddEdge(1, 3, 1, 2.0);
  flow.AddEdge(2, 3, 1, 1.0);
  flow.AddEdge(1, 2, 1, 0.0);
  auto sol = flow.Solve(0, 3, 2);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->flow, 2);
  EXPECT_DOUBLE_EQ(sol->cost, 6.0);
}

TEST(MinCostFlowTest, FlowLimitRespected) {
  MinCostFlow flow(2);
  flow.AddEdge(0, 1, 100, 1.0);
  auto sol = flow.Solve(0, 1, 7);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->flow, 7);
}

TEST(MinCostFlowTest, DisconnectedSinkGivesZeroFlow) {
  MinCostFlow flow(3);
  flow.AddEdge(0, 1, 1, 1.0);
  auto sol = flow.Solve(0, 2, 5);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->flow, 0);
  EXPECT_DOUBLE_EQ(sol->cost, 0.0);
}

TEST(MinCostFlowTest, RejectsDoubleSolveAndBadEndpoints) {
  MinCostFlow flow(2);
  flow.AddEdge(0, 1, 1, 1.0);
  ASSERT_TRUE(flow.Solve(0, 1).ok());
  EXPECT_FALSE(flow.Solve(0, 1).ok());
  MinCostFlow flow2(2);
  EXPECT_FALSE(flow2.Solve(0, 0).ok());
  MinCostFlow flow3(2);
  EXPECT_FALSE(flow3.Solve(0, 5).ok());
}

TEST(MinCostFlowTest, BipartiteAssignmentMatchesHungarianShape) {
  // 2 tuples x 2 groups with unit chains: verifies the flow decomposition
  // used by the aggregate median.
  MinCostFlow flow(6);  // s=0, t=1, tuples 2,3, groups 4,5
  flow.AddEdge(0, 2, 1, 0.0);
  flow.AddEdge(0, 3, 1, 0.0);
  flow.AddEdge(2, 4, 1, 0.0);
  flow.AddEdge(2, 5, 1, 0.0);
  flow.AddEdge(3, 5, 1, 0.0);
  int g4 = flow.AddEdge(4, 1, 1, 1.0);
  int g5a = flow.AddEdge(5, 1, 1, 1.0);
  int g5b = flow.AddEdge(5, 1, 1, 3.0);
  auto sol = flow.Solve(0, 1, 2);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->flow, 2);
  // Optimal: tuple2->group4, tuple3->group5 => cost 1 + 1 = 2.
  EXPECT_DOUBLE_EQ(sol->cost, 2.0);
  EXPECT_EQ(flow.Flow(g4), 1);
  EXPECT_EQ(flow.Flow(g5a), 1);
  EXPECT_EQ(flow.Flow(g5b), 0);
}

class McmfRandomProperty : public ::testing::TestWithParam<int> {};

// Random bipartite transportation instances cross-checked against the
// Hungarian solver (costs >= 0, perfect matchings).
TEST_P(McmfRandomProperty, AgreesWithHungarianOnAssignmentInstances) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 5);
  int n = static_cast<int>(rng.UniformInt(2, 6));
  std::vector<std::vector<double>> cost(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
  for (auto& row : cost) {
    for (double& c : row) c = rng.Uniform(0.0, 10.0);
  }

  MinCostFlow flow(2 * n + 2);
  int s = 2 * n, t = 2 * n + 1;
  for (int i = 0; i < n; ++i) {
    flow.AddEdge(s, i, 1, 0.0);
    flow.AddEdge(n + i, t, 1, 0.0);
    for (int j = 0; j < n; ++j) {
      flow.AddEdge(i, n + j, 1, cost[static_cast<size_t>(i)][static_cast<size_t>(j)]);
    }
  }
  auto sol = flow.Solve(s, t, n);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->flow, n);

  auto hungarian = SolveAssignmentMin(cost);
  ASSERT_TRUE(hungarian.ok());
  EXPECT_NEAR(sol->cost, hungarian->total, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McmfRandomProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace cpdb

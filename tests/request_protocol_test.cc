// Copyright 2026 The ConsensusDB Authors
//
// Grammar-level tests of the serving protocol: tokenization, comments,
// strict integer syntax, duplicate rejection, and response assembly. The
// semantic mapping of fields to typed requests is covered in
// tests/service_test.cc.

#include "io/request_protocol.h"

#include <gtest/gtest.h>

namespace cpdb {
namespace {

TEST(RequestProtocolTest, ParsesFieldsInOrder) {
  auto line = ParseRequestLine("op=topk tree=movies metric=kendall k=3");
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  ASSERT_EQ(line->fields.size(), 4u);
  EXPECT_EQ(line->fields[0].name, "op");
  EXPECT_EQ(line->fields[0].value, "topk");
  EXPECT_EQ(line->fields[3].name, "k");
  EXPECT_EQ(line->fields[3].value, "3");
  ASSERT_NE(line->Find("tree"), nullptr);
  EXPECT_EQ(*line->Find("tree"), "movies");
  EXPECT_EQ(line->Find("absent"), nullptr);
}

TEST(RequestProtocolTest, ToleratesExtraWhitespaceAndCr) {
  auto line = ParseRequestLine("  op=stats\t \r");
  ASSERT_TRUE(line.ok());
  ASSERT_EQ(line->fields.size(), 1u);
  EXPECT_EQ(line->fields[0].name, "op");
}

TEST(RequestProtocolTest, BlankAndCommentLinesParseToNoFields) {
  for (const char* text : {"", "   ", "\t", "# op=topk tree=t k=1", "  # x"}) {
    auto line = ParseRequestLine(text);
    ASSERT_TRUE(line.ok()) << "'" << text << "'";
    EXPECT_TRUE(line->fields.empty()) << "'" << text << "'";
  }
}

TEST(RequestProtocolTest, RejectsMalformedTokens) {
  // A token without '=', an empty value, a bad name, a duplicate: each is
  // an error, never a silently dropped or defaulted field.
  EXPECT_FALSE(ParseRequestLine("op=topk badtoken").ok());
  EXPECT_FALSE(ParseRequestLine("op=topk k=").ok());
  EXPECT_FALSE(ParseRequestLine("=value").ok());
  EXPECT_FALSE(ParseRequestLine("9k=3").ok());
  EXPECT_FALSE(ParseRequestLine("na me=x").ok());  // splits to bad tokens
  EXPECT_FALSE(ParseRequestLine("op=topk op=world").ok());
  // '#' only comments a whole line, not a trailing token.
  EXPECT_FALSE(ParseRequestLine("op=stats #trailing").ok());
}

TEST(RequestProtocolTest, StrictIntAcceptsPlainDecimals) {
  for (const char* good : {"0", "42", "-7", "+9", "007"}) {
    auto parsed = ParseStrictInt("k", good);
    ASSERT_TRUE(parsed.ok()) << good;
  }
  EXPECT_EQ(*ParseStrictInt("k", "-7"), -7);
  EXPECT_EQ(*ParseStrictInt("k", "007"), 7);
}

TEST(RequestProtocolTest, StrictIntRejectsGarbage) {
  for (const char* bad :
       {"", "1o", "abc", "12.5", "0x9", " 3", "3 ", "9999999999999999999999"}) {
    auto parsed = ParseStrictInt("k", bad);
    EXPECT_FALSE(parsed.ok()) << "'" << bad << "' was accepted";
    EXPECT_NE(parsed.status().ToString().find("expects an integer"),
              std::string::npos);
  }
}

TEST(RequestProtocolTest, FormatsResponseAndErrorLines) {
  EXPECT_EQ(FormatResponseLine({{"op", "stats"}, {"hits", "3"}}),
            "ok\top=stats\thits=3\n");
  EXPECT_EQ(FormatResponseLine({}), "ok\n");
  std::string error =
      FormatErrorLine(7, Status::InvalidArgument("unknown op 'bogus'"));
  EXPECT_EQ(error.find("error\tline=7\tmsg="), 0u);
  EXPECT_NE(error.find("unknown op 'bogus'"), std::string::npos);
  EXPECT_EQ(error.back(), '\n');
}

}  // namespace
}  // namespace cpdb

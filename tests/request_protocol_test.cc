// Copyright 2026 The ConsensusDB Authors
//
// Grammar-level tests of the serving protocol: tokenization, comments
// (line-initial and trailing), strict integer syntax, duplicate rejection,
// response assembly, and the escape/unescape round trip that keeps one
// request one response *line* no matter what bytes the values carry. The
// semantic mapping of fields to typed requests is covered in
// tests/service_test.cc.

#include "io/request_protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "service/query_scheduler.h"

namespace cpdb {
namespace {

TEST(RequestProtocolTest, UnknownOpErrorListsTheRegistryOps) {
  // The valid-op enumeration is derived from the OpRegistry, not a string
  // literal: this golden pin moves exactly when an op is added to (or
  // removed from) the table, and at no other time.
  auto line = ParseRequestLine("op=bogus tree=t");
  ASSERT_TRUE(line.ok());
  auto request = ServiceRequestFromLine(*line);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().message(),
            "unknown op 'bogus' (expected load, topk, world, stats, "
            "metrics, marginals, aggregate, baseline or hardness)");
}

TEST(RequestProtocolTest, ParsesFieldsInOrder) {
  auto line = ParseRequestLine("op=topk tree=movies metric=kendall k=3");
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  ASSERT_EQ(line->fields.size(), 4u);
  EXPECT_EQ(line->fields[0].name, "op");
  EXPECT_EQ(line->fields[0].value, "topk");
  EXPECT_EQ(line->fields[3].name, "k");
  EXPECT_EQ(line->fields[3].value, "3");
  ASSERT_NE(line->Find("tree"), nullptr);
  EXPECT_EQ(*line->Find("tree"), "movies");
  EXPECT_EQ(line->Find("absent"), nullptr);
}

TEST(RequestProtocolTest, ToleratesExtraWhitespaceAndCr) {
  auto line = ParseRequestLine("  op=stats\t \r");
  ASSERT_TRUE(line.ok());
  ASSERT_EQ(line->fields.size(), 1u);
  EXPECT_EQ(line->fields[0].name, "op");
}

TEST(RequestProtocolTest, BlankAndCommentLinesParseToNoFields) {
  for (const char* text : {"", "   ", "\t", "# op=topk tree=t k=1", "  # x",
                           "#no-space", "  #"}) {
    auto line = ParseRequestLine(text);
    ASSERT_TRUE(line.ok()) << "'" << text << "'";
    EXPECT_TRUE(line->fields.empty()) << "'" << text << "'";
  }
}

TEST(RequestProtocolTest, TrailingCommentsEndTheLineAnywhere) {
  // A token-initial '#' is a comment wherever it appears — "op=stats # note"
  // must parse as a one-field request, not fail with "'#' is not
  // name=value".
  for (const char* text :
       {"op=stats # note", "op=stats #note", "op=stats\t# tab-separated",
        "op=stats # k=nonsense op=garbage"}) {
    auto line = ParseRequestLine(text);
    ASSERT_TRUE(line.ok()) << "'" << text << "': "
                           << line.status().ToString();
    ASSERT_EQ(line->fields.size(), 1u) << "'" << text << "'";
    EXPECT_EQ(line->fields[0].name, "op");
    EXPECT_EQ(line->fields[0].value, "stats");
  }
  // Fields before the comment all survive; garbage after '#' is ignored.
  auto line = ParseRequestLine("op=topk tree=t k=2 # metric=typo'd");
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line->fields.size(), 3u);
}

TEST(RequestProtocolTest, HashInsideValuesStaysLiteral) {
  // Comments exist only at token boundaries: '#' after '=' (or anywhere
  // inside a token) is an ordinary value character, so paths with fragments
  // keep working.
  auto line = ParseRequestLine("op=load name=t file=/tmp/a#b.sexp");
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  ASSERT_NE(line->Find("file"), nullptr);
  EXPECT_EQ(*line->Find("file"), "/tmp/a#b.sexp");
  // A value that is just "#..." after '=' is a value, not a comment.
  auto hash_value = ParseRequestLine("op=load name=t file=#tag");
  ASSERT_TRUE(hash_value.ok());
  EXPECT_EQ(*hash_value->Find("file"), "#tag");
}

TEST(RequestProtocolTest, RejectsMalformedTokens) {
  // A token without '=', an empty value, a bad name, a duplicate: each is
  // an error, never a silently dropped or defaulted field.
  EXPECT_FALSE(ParseRequestLine("op=topk badtoken").ok());
  EXPECT_FALSE(ParseRequestLine("op=topk k=").ok());
  EXPECT_FALSE(ParseRequestLine("=value").ok());
  EXPECT_FALSE(ParseRequestLine("9k=3").ok());
  EXPECT_FALSE(ParseRequestLine("na me=x").ok());  // splits to bad tokens
  EXPECT_FALSE(ParseRequestLine("op=topk op=world").ok());
  // A comment cannot rescue garbage *before* it.
  EXPECT_FALSE(ParseRequestLine("badtoken # comment").ok());
}

TEST(RequestProtocolTest, StrictIntAcceptsPlainDecimals) {
  for (const char* good : {"0", "42", "-7", "+9", "007"}) {
    auto parsed = ParseStrictInt("k", good);
    ASSERT_TRUE(parsed.ok()) << good;
  }
  EXPECT_EQ(*ParseStrictInt("k", "-7"), -7);
  EXPECT_EQ(*ParseStrictInt("k", "007"), 7);
}

TEST(RequestProtocolTest, StrictIntRejectsGarbage) {
  for (const char* bad :
       {"", "1o", "abc", "12.5", "0x9", " 3", "3 ", "9999999999999999999999"}) {
    auto parsed = ParseStrictInt("k", bad);
    EXPECT_FALSE(parsed.ok()) << "'" << bad << "' was accepted";
    EXPECT_NE(parsed.status().ToString().find("expects an integer"),
              std::string::npos);
  }
}

TEST(RequestProtocolTest, FormatsResponseAndErrorLines) {
  EXPECT_EQ(FormatResponseLine({{"op", "stats"}, {"hits", "3"}}),
            "ok\top=stats\thits=3\n");
  EXPECT_EQ(FormatResponseLine({}), "ok\n");
  std::string error =
      FormatErrorLine(7, Status::InvalidArgument("unknown op 'bogus'"));
  EXPECT_EQ(error.find("error\tline=7\tmsg="), 0u);
  EXPECT_NE(error.find("unknown op 'bogus'"), std::string::npos);
  EXPECT_EQ(error.back(), '\n');
}

TEST(RequestProtocolTest, EscapeRoundTripsEveryByteClass) {
  // Built by concatenation so the \x escapes cannot munch the following
  // letters as hex digits.
  const std::string hostile =
      std::string("tab\there\nnewline\rcr\\backslash") + '\x01' + "ctl" +
      '\x7F';
  std::string escaped = EscapeFieldValue(hostile);
  // No raw control characters survive escaping: the framing is safe.
  for (char c : escaped) {
    unsigned char u = static_cast<unsigned char>(c);
    EXPECT_FALSE(u < 0x20 || u == 0x7F) << "raw control byte in escaped form";
  }
  auto raw = UnescapeFieldValue(escaped);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(*raw, hostile);
  // The identity on clean values — escaping costs nothing on honest
  // traffic.
  EXPECT_EQ(EscapeFieldValue("plain value, spaces ok"),
            "plain value, spaces ok");
  EXPECT_EQ(*UnescapeFieldValue("plain"), "plain");
}

TEST(RequestProtocolTest, UnescapeRejectsMalformedEscapes) {
  for (const char* bad : {"dangling\\", "unknown\\q", "short\\x1",
                          "bad\\xZZ"}) {
    auto raw = UnescapeFieldValue(bad);
    EXPECT_FALSE(raw.ok()) << "'" << bad << "' was accepted";
  }
}

TEST(RequestProtocolTest, ResponseLinesStayOneLinePerRequest) {
  // The satellite bug: a value carrying a tab or newline (e.g. a Status
  // message echoing hostile user input) must not corrupt the tab-separated
  // framing — one request, one '\n', tabs only between fields.
  std::string line = FormatResponseLine(
      {{"op", "topk"}, {"tree", "evil\tname\nwith\rctl"}});
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // exactly one, terminal
  EXPECT_EQ(line.find('\r'), std::string::npos);
  // Exactly the two field separators, none smuggled in by the value.
  int tabs = 0;
  for (char c : line) tabs += c == '\t';
  EXPECT_EQ(tabs, 2);

  std::string error = FormatErrorLine(
      3, Status::InvalidArgument("unknown op 'evil\top=stats'"));
  EXPECT_EQ(error.find('\n'), error.size() - 1);
  tabs = 0;
  for (char c : error) tabs += c == '\t';
  EXPECT_EQ(tabs, 2);  // line= and msg= separators only
}

TEST(RequestProtocolTest, ParseResponseLineRoundTripsFormat) {
  const std::vector<RequestField> fields = {
      {"op", "topk"},
      {"tree", "movies"},
      {"msg", "hostile\tvalue\nacross lines\\with\x02junk"},
      {"expected", "0.29749999999999999"},
  };
  auto parsed = ParseResponseLine(FormatResponseLine(fields));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->ok);
  ASSERT_EQ(parsed->fields.size(), fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    EXPECT_EQ(parsed->fields[i].name, fields[i].name) << i;
    EXPECT_EQ(parsed->fields[i].value, fields[i].value) << i;
  }

  auto error = ParseResponseLine(
      FormatErrorLine(12, Status::InvalidArgument("bad\tfield")));
  ASSERT_TRUE(error.ok());
  EXPECT_FALSE(error->ok);
  ASSERT_NE(error->Find("line"), nullptr);
  EXPECT_EQ(*error->Find("line"), "12");
  ASSERT_NE(error->Find("msg"), nullptr);
  EXPECT_NE(error->Find("msg")->find("bad\tfield"), std::string::npos);
}

TEST(RequestProtocolTest, ParseResponseLineRejectsGarbage) {
  EXPECT_FALSE(ParseResponseLine("maybe\top=topk").ok());
  EXPECT_FALSE(ParseResponseLine("").ok());
  EXPECT_FALSE(ParseResponseLine("ok\tnovalue").ok());
  EXPECT_FALSE(ParseResponseLine("ok\t=v").ok());
  EXPECT_FALSE(ParseResponseLine("ok\ta=1\ta=2").ok());     // duplicate
  EXPECT_FALSE(ParseResponseLine("ok\ta=bad\\escape").ok());
  // The bare tokens round-trip.
  EXPECT_TRUE(ParseResponseLine("ok\n").ok());
  EXPECT_TRUE(ParseResponseLine("ok").ok());
}

// The slow-query log and the trace_* fields echo *request* text through
// EscapeFieldValue — a hostile request must not be able to forge log or
// response structure. Pin the round trip for the byte classes a request
// line can smuggle in: tabs, newlines, backslashes, '=' signs, leading
// '#', and the escape sequences themselves.
TEST(RequestProtocolTest, HostileRequestEchoesRoundTrip) {
  const std::string hostile_requests[] = {
      "op=topk\ttree=a\tk=2",
      "op=load\tname=x\tfile=/tmp/evil\nok\tforged=1",
      "op=stats\t# trailing comment",
      "op=metrics\tformat=kv\\n",
      "tree=\\t\\\\\\n",
      "op=topk tree=sp aces k=1=2",
      std::string("binary\0payload", 14),
  };
  for (const std::string& raw : hostile_requests) {
    const std::string escaped = EscapeFieldValue(raw);
    // One line: the escape must remove every literal newline and tab.
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << raw;
    EXPECT_EQ(escaped.find('\t'), std::string::npos) << raw;
    auto unescaped = UnescapeFieldValue(escaped);
    ASSERT_TRUE(unescaped.ok()) << raw;
    EXPECT_EQ(*unescaped, raw);

    // And embedded in a full response line (the trace/slow-query framing),
    // the line parses back to exactly one field holding the raw bytes.
    const std::string line =
        FormatResponseLine({{"op", "topk"}, {"request", raw}});
    auto parsed = ParseResponseLine(line);
    ASSERT_TRUE(parsed.ok()) << raw;
    ASSERT_EQ(parsed->fields.size(), 2u);
    EXPECT_EQ(parsed->fields[1].name, "request");
    EXPECT_EQ(parsed->fields[1].value, raw);
  }
}

}  // namespace
}  // namespace cpdb

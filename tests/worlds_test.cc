// Copyright 2026 The ConsensusDB Authors

#include "model/possible_worlds.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "model/builders.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

TupleAlternative Alt(KeyId key, double score) {
  TupleAlternative a;
  a.key = key;
  a.score = score;
  return a;
}

// The highly correlated database of Figure 1(ii)/(iii): three possible
// worlds pw1 = {(t3,6),(t2,5),(t1,1)} (0.3), pw2 = {(t3,9),(t1,7),(t4,0)}
// (0.3), pw3 = {(t2,8),(t4,4),(t5,3)} (0.4).
AndXorTree Figure1iiiTree() {
  AndXorTree tree;
  NodeId pw1 = tree.AddAnd({tree.AddLeaf(Alt(3, 6)), tree.AddLeaf(Alt(2, 5)),
                            tree.AddLeaf(Alt(1, 1))});
  NodeId pw2 = tree.AddAnd({tree.AddLeaf(Alt(3, 9)), tree.AddLeaf(Alt(1, 7)),
                            tree.AddLeaf(Alt(4, 0))});
  NodeId pw3 = tree.AddAnd({tree.AddLeaf(Alt(2, 8)), tree.AddLeaf(Alt(4, 4)),
                            tree.AddLeaf(Alt(5, 3))});
  tree.SetRoot(tree.AddXor({pw1, pw2, pw3}, {0.3, 0.3, 0.4}));
  EXPECT_TRUE(tree.Validate().ok());
  return tree;
}

TEST(PossibleWorldsTest, Figure1iiiEnumeration) {
  AndXorTree tree = Figure1iiiTree();
  auto worlds = EnumerateWorlds(tree);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 3u);
  double total = 0.0;
  for (const World& w : *worlds) {
    EXPECT_EQ(w.leaf_ids.size(), 3u);
    total += w.prob;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PossibleWorldsTest, Figure1iiiTopK) {
  AndXorTree tree = Figure1iiiTree();
  auto worlds = EnumerateWorlds(tree);
  ASSERT_TRUE(worlds.ok());
  // Identify pw2 by probability ordering: it contains (3,9),(1,7),(4,0).
  for (const World& w : *worlds) {
    std::vector<KeyId> top2 = TopKOfWorld(tree, w.leaf_ids, 2);
    ASSERT_EQ(top2.size(), 2u);
    std::vector<TupleAlternative> tuples = WorldTuples(tree, w.leaf_ids);
    EXPECT_EQ(top2[0], tuples[0].key);
    EXPECT_GT(tuples[0].score, tuples[1].score);
  }
}

TEST(PossibleWorldsTest, ProbabilitiesSumToOneOnRandomTrees) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<uint64_t>(seed));
    RandomTreeOptions opts;
    opts.num_keys = 6;
    opts.max_depth = 3;
    auto tree = RandomAndXorTree(opts, &rng);
    ASSERT_TRUE(tree.ok());
    auto worlds = EnumerateWorlds(*tree);
    ASSERT_TRUE(worlds.ok());
    double total = 0.0;
    for (const World& w : *worlds) {
      EXPECT_GT(w.prob, 0.0);
      total += w.prob;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "seed " << seed;
  }
}

TEST(PossibleWorldsTest, EnumerationLimitIsEnforced) {
  Rng rng(1);
  auto tree = RandomTupleIndependent(24, &rng);
  ASSERT_TRUE(tree.ok());
  auto worlds = EnumerateWorlds(*tree, /*max_worlds=*/1000);
  EXPECT_EQ(worlds.status().code(), StatusCode::kResourceExhausted);
}

TEST(PossibleWorldsTest, WorldsRespectKeyConstraint) {
  Rng rng(7);
  RandomTreeOptions opts;
  opts.num_keys = 5;
  opts.max_depth = 3;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  auto worlds = EnumerateWorlds(*tree);
  ASSERT_TRUE(worlds.ok());
  for (const World& w : *worlds) {
    std::map<KeyId, int> key_count;
    for (NodeId l : w.leaf_ids) ++key_count[tree->node(l).leaf.key];
    for (const auto& [key, count] : key_count) {
      EXPECT_EQ(count, 1) << "key " << key << " appears twice in a world";
    }
  }
}

TEST(PossibleWorldsTest, SamplingMatchesEnumeration) {
  AndXorTree tree = Figure1iiiTree();
  auto worlds = EnumerateWorlds(tree);
  ASSERT_TRUE(worlds.ok());
  std::map<std::vector<NodeId>, double> expected;
  for (const World& w : *worlds) expected[w.leaf_ids] = w.prob;

  Rng rng(42);
  std::map<std::vector<NodeId>, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[SampleWorld(tree, &rng)];
  ASSERT_EQ(counts.size(), expected.size());
  for (const auto& [world, count] : counts) {
    ASSERT_TRUE(expected.count(world) > 0);
    EXPECT_NEAR(static_cast<double>(count) / n, expected[world], 0.01);
  }
}

TEST(PossibleWorldsTest, SamplingHandlesAbsence) {
  // Single tuple present with probability 0.25.
  std::vector<IndependentTuple> tuples(1);
  tuples[0].alt = Alt(1, 1.0);
  tuples[0].prob = 0.25;
  auto tree = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree.ok());
  Rng rng(5);
  int present = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    present += SampleWorld(*tree, &rng).empty() ? 0 : 1;
  }
  EXPECT_NEAR(static_cast<double>(present) / n, 0.25, 0.01);
}

TEST(PossibleWorldsTest, ZeroProbabilityBranchesAreDropped) {
  AndXorTree tree;
  NodeId a = tree.AddLeaf(Alt(1, 1));
  NodeId b = tree.AddLeaf(Alt(1, 2));
  tree.SetRoot(tree.AddXor({a, b}, {0.0, 1.0}));
  ASSERT_TRUE(tree.Validate().ok());
  auto worlds = EnumerateWorlds(tree);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 1u);
  EXPECT_EQ((*worlds)[0].leaf_ids, std::vector<NodeId>{b});
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Section 5.5: Kendall tau over Top-k answers — exact pairwise statistics,
// the evaluator's agreement with enumeration, and the constant-factor
// behavior of the pivot / footrule aggregation heuristics.

#include "core/topk_kendall.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/evaluation.h"
#include "core/topk_footrule.h"
#include "model/possible_worlds.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

constexpr int kK = 2;

class TopKKendallProperty : public ::testing::TestWithParam<int> {};

TEST_P(TopKKendallProperty, PairwiseStatisticMatchesEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 151 + 13);
  RandomTreeOptions opts;
  opts.num_keys = 4;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  auto worlds = EnumerateWorlds(*tree);
  ASSERT_TRUE(worlds.ok());

  std::vector<KeyId> keys = tree->Keys();
  for (KeyId u : keys) {
    for (KeyId t : keys) {
      if (u == t) continue;
      double expected = 0.0;
      for (const World& w : *worlds) {
        std::vector<TupleAlternative> tuples = WorldTuples(*tree, w.leaf_ids);
        int rank_u = -1, rank_t = -1;
        for (size_t pos = 0; pos < tuples.size(); ++pos) {
          if (tuples[pos].key == u) rank_u = static_cast<int>(pos) + 1;
          if (tuples[pos].key == t) rank_t = static_cast<int>(pos) + 1;
        }
        bool u_in_topk = rank_u > 0 && rank_u <= kK;
        bool u_before_t = rank_u > 0 && (rank_t < 0 || rank_u < rank_t);
        if (u_in_topk && u_before_t) expected += w.prob;
      }
      EXPECT_NEAR(PrInTopKAndBefore(*tree, u, t, kK), expected, 1e-9)
          << "u=" << u << " t=" << t;
    }
  }
}

TEST_P(TopKKendallProperty, EvaluatorMatchesEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 157 + 17);
  RandomTreeOptions opts;
  opts.num_keys = 4;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  KendallEvaluator evaluator(*tree, kK);

  std::vector<KeyId> keys = tree->Keys();
  for (int trial = 0; trial < 4; ++trial) {
    rng.Shuffle(&keys);
    std::vector<KeyId> answer(keys.begin(),
                              keys.begin() + std::min<size_t>(keys.size(), kK));
    auto expected =
        EnumExpectedTopKDistance(*tree, answer, kK, TopKMetric::kKendall);
    ASSERT_TRUE(expected.ok());
    EXPECT_NEAR(evaluator.Expected(answer), *expected, 1e-9);
  }
}

TEST_P(TopKKendallProperty, HeuristicsWithinFactorTwoOfExact) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 163 + 19);
  RandomTreeOptions opts;
  opts.num_keys = 5;
  opts.max_depth = 2;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, kK);
  if (static_cast<int>(dist.keys().size()) < kK) GTEST_SKIP();
  KendallEvaluator evaluator(*tree, kK);

  auto exact = MeanTopKKendallExact(evaluator, dist);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();

  auto footrule = MeanTopKKendallViaFootrule(evaluator, dist);
  ASSERT_TRUE(footrule.ok());
  EXPECT_GE(footrule->expected_distance, exact->expected_distance - 1e-9);
  if (exact->expected_distance > 1e-6) {
    EXPECT_LE(footrule->expected_distance,
              2.0 * exact->expected_distance + 1e-6)
        << "footrule aggregation exceeded its 2-approximation bound";
  }

  auto order_probs = PairwiseOrderProbabilities(*tree, evaluator.keys());
  auto pivot = MeanTopKKendallPivot(evaluator, order_probs, &rng);
  ASSERT_TRUE(pivot.ok());
  EXPECT_GE(pivot->expected_distance, exact->expected_distance - 1e-9);
}

TEST_P(TopKKendallProperty, SubsetDpMatchesBruteForceExact) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 179 + 23);
  RandomTreeOptions opts;
  opts.num_keys = 5;
  opts.max_depth = 2;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, kK);
  KendallEvaluator evaluator(*tree, kK);

  auto brute = MeanTopKKendallExact(evaluator, dist);
  auto dp = MeanTopKKendallExactDp(evaluator, dist);
  if (!brute.ok()) {
    // Too many candidates for the factorial search; the DP must still work.
    ASSERT_TRUE(dp.ok()) << dp.status().ToString();
    return;
  }
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  EXPECT_NEAR(dp->expected_distance, brute->expected_distance, 1e-9)
      << "subset DP disagrees with factorial brute force";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKKendallProperty, ::testing::Range(0, 12));

TEST(TopKKendallTest, SubsetDpScalesBeyondBruteForce) {
  Rng rng(7);
  RandomTreeOptions opts;
  opts.num_keys = 14;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  ASSERT_TRUE(tree.ok());
  const int k = 4;
  RankDistribution dist = ComputeRankDistribution(*tree, k);
  KendallEvaluator evaluator(*tree, k);
  // 14 candidates: the factorial search refuses, the DP succeeds, and the
  // heuristics may not beat it.
  EXPECT_FALSE(MeanTopKKendallExact(evaluator, dist).ok());
  auto dp = MeanTopKKendallExactDp(evaluator, dist);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  auto footrule = MeanTopKKendallViaFootrule(evaluator, dist);
  ASSERT_TRUE(footrule.ok());
  EXPECT_LE(dp->expected_distance, footrule->expected_distance + 1e-9);
}

TEST(TopKKendallTest, ExactRefusesLargeCandidateSets) {
  Rng rng(3);
  auto tree = RandomTupleIndependent(12, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, 2);
  KendallEvaluator evaluator(*tree, 2);
  EXPECT_EQ(MeanTopKKendallExact(evaluator, dist, /*max_candidates=*/5)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

// The Create factory adopts a well-shaped external q matrix bitwise and
// rejects a mis-shaped one with a Status instead of aborting the process
// (the PR 1 review item).
TEST(TopKKendallTest, CreateValidatesExternalMatrixShape) {
  Rng rng(11);
  RandomTreeOptions opts;
  opts.num_keys = 4;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  KendallEvaluator computed(*tree, kK);
  const std::vector<KeyId>& keys = computed.keys();

  std::vector<std::vector<double>> q(keys.size(),
                                     std::vector<double>(keys.size(), 0.0));
  for (size_t iu = 0; iu < keys.size(); ++iu) {
    for (size_t it = 0; it < keys.size(); ++it) {
      q[iu][it] = computed.Q(keys[iu], keys[it]);
    }
  }
  auto adopted = KendallEvaluator::Create(*tree, kK, q);
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  for (KeyId u : keys) {
    for (KeyId t : keys) {
      EXPECT_EQ(adopted->Q(u, t), computed.Q(u, t));
    }
  }

  // Too few rows, and a ragged row: both are InvalidArgument, not abort.
  std::vector<std::vector<double>> short_q(keys.size() - 1,
                                           std::vector<double>(keys.size()));
  EXPECT_EQ(KendallEvaluator::Create(*tree, kK, short_q).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<std::vector<double>> ragged_q = q;
  ragged_q.back().pop_back();
  EXPECT_EQ(KendallEvaluator::Create(*tree, kK, ragged_q).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TopKKendallTest, CertainDatabaseExactIsTrueTopK) {
  std::vector<IndependentTuple> tuples;
  for (int i = 0; i < 5; ++i) {
    IndependentTuple t;
    t.alt.key = i;
    t.alt.score = 50.0 - i;
    t.prob = 1.0;
    tuples.push_back(t);
  }
  auto tree_or = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree_or.ok());
  KendallEvaluator evaluator(*tree_or, 3);
  RankDistribution dist = ComputeRankDistribution(*tree_or, 3);
  auto exact = MeanTopKKendallExact(evaluator, dist);
  ASSERT_TRUE(exact.ok());
  std::vector<KeyId> truth = {0, 1, 2};
  EXPECT_EQ(exact->keys, truth);
  EXPECT_NEAR(exact->expected_distance, 0.0, 1e-12);
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Tests for the thread pool and the parallel evaluation engine: full index
// coverage, schedule determinism (bitwise-identical results for any thread
// count), parity with the sequential core functions, and seeded-Rng
// reproducibility of the chunked Monte-Carlo paths.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/evaluation.h"
#include "core/rank_distribution.h"
#include "core/set_consensus.h"
#include "core/topk_footrule.h"
#include "core/topk_intersection.h"
#include "core/topk_kendall.h"
#include "core/topk_symdiff.h"
#include "model/builders.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

AndXorTree RandomDeepTree(uint64_t seed, int num_keys = 8) {
  Rng rng(seed);
  RandomTreeOptions opts;
  opts.num_keys = num_keys;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  EXPECT_TRUE(tree.ok());
  return *std::move(tree);
}

AndXorTree RandomBidTree(uint64_t seed, int num_keys = 10) {
  Rng rng(seed);
  RandomTreeOptions opts;
  opts.num_keys = num_keys;
  opts.max_alternatives = 3;
  auto tree = RandomBid(opts, &rng);
  EXPECT_TRUE(tree.ok());
  return *std::move(tree);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    const int64_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(n, [&](int64_t i) { hits[i].fetch_add(1); });
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, AbsurdThreadCountIsClampedNotFatal) {
  ThreadPool pool(1000000);
  EXPECT_EQ(pool.num_threads(), ThreadPool::kMaxThreads);
  std::atomic<int> count{0};
  pool.ParallelFor(1000, [&](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](int64_t) { FAIL() << "body called for n = 0"; });
  std::atomic<int> count{0};
  pool.ParallelFor(1, [&](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](int64_t) {
    pool.ParallelFor(8, [&](int64_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

// ---------------------------------------------------------------------------
// Engine — determinism and parity of the exact paths
// ---------------------------------------------------------------------------

// The parallel rank distribution must match the sequential core function
// bitwise, for every thread count (the merge replays the same accumulation
// order).
TEST(EngineTest, RankDistributionBitwiseEqualAcrossThreadCounts) {
  const int k = 5;
  for (uint64_t seed : {1u, 2u, 3u}) {
    AndXorTree tree = RandomDeepTree(seed);
    RankDistribution expected = ComputeRankDistribution(tree, k);
    for (int threads : {1, 2, 4, 8}) {
      EngineOptions opts;
      opts.num_threads = threads;
      Engine engine(opts);
      RankDistribution dist = engine.ComputeRankDistribution(tree, k);
      ASSERT_EQ(dist.keys(), expected.keys());
      for (KeyId key : expected.keys()) {
        for (int i = 1; i <= k; ++i) {
          // Bitwise equality, not EXPECT_NEAR: the parallel path must be
          // indistinguishable from the sequential one.
          ASSERT_EQ(dist.PrRankEq(key, i), expected.PrRankEq(key, i))
              << "seed " << seed << " threads " << threads << " key " << key
              << " rank " << i;
          ASSERT_EQ(dist.PrRankLe(key, i), expected.PrRankLe(key, i));
        }
      }
    }
  }
}

TEST(EngineTest, RankDistributionUsesFastBidPathByDefault) {
  const int k = 4;
  AndXorTree tree = RandomBidTree(7);
  EngineOptions opts;
  opts.num_threads = 4;
  Engine engine(opts);
  RankDistribution dist = engine.ComputeRankDistribution(tree, k);
  // The fast path and the general path agree analytically; check against
  // the sequential general-path computation to a tight tolerance.
  RankDistribution general = ComputeRankDistribution(tree, k);
  for (KeyId key : general.keys()) {
    for (int i = 1; i <= k; ++i) {
      EXPECT_NEAR(dist.PrRankEq(key, i), general.PrRankEq(key, i), 1e-9);
    }
  }
}

TEST(EngineTest, PairwiseOrderProbabilitiesMatchCore) {
  AndXorTree tree = RandomDeepTree(11, 6);
  std::vector<KeyId> keys = tree.Keys();
  std::vector<std::vector<double>> expected =
      PairwiseOrderProbabilities(tree, keys);
  for (int threads : {1, 4}) {
    EngineOptions opts;
    opts.num_threads = threads;
    Engine engine(opts);
    std::vector<std::vector<double>> got =
        engine.PairwiseOrderProbabilities(tree, keys);
    ASSERT_EQ(got, expected) << "threads " << threads;
  }
}

TEST(EngineTest, ConsensusTopKMatchesDirectCoreCalls) {
  const int k = 3;
  AndXorTree tree = RandomDeepTree(13);
  RankDistribution dist = ComputeRankDistribution(tree, k);
  EngineOptions opts;
  opts.num_threads = 4;
  opts.use_fast_bid_path = false;
  Engine engine(opts);

  auto mean_sym = engine.ConsensusTopK(tree, k, TopKMetric::kSymDiff);
  ASSERT_TRUE(mean_sym.ok());
  EXPECT_EQ(mean_sym->keys, MeanTopKSymDiff(dist).keys);

  auto median_sym =
      engine.ConsensusTopK(tree, k, TopKMetric::kSymDiff, TopKAnswer::kMedian);
  ASSERT_TRUE(median_sym.ok());
  auto median_direct = MedianTopKSymDiff(tree, dist);
  ASSERT_TRUE(median_direct.ok());
  EXPECT_EQ(median_sym->keys, median_direct->keys);

  auto mean_foot = engine.ConsensusTopK(tree, k, TopKMetric::kFootrule);
  ASSERT_TRUE(mean_foot.ok());
  auto foot_direct = MeanTopKFootrule(dist);
  ASSERT_TRUE(foot_direct.ok());
  EXPECT_EQ(mean_foot->keys, foot_direct->keys);

  auto approx_int = engine.ConsensusTopK(tree, k, TopKMetric::kIntersection,
                                         TopKAnswer::kMeanApprox);
  ASSERT_TRUE(approx_int.ok());
  EXPECT_EQ(approx_int->keys, MeanTopKIntersectionApprox(dist).keys);
}

// The engine's kendall path precomputes the q matrix in parallel and feeds
// it to KendallEvaluator; the result must match the sequential evaluator
// bitwise for any thread count.
TEST(EngineTest, KendallConsensusMatchesSequentialEvaluator) {
  const int k = 3;
  AndXorTree tree = RandomDeepTree(41, 6);
  RankDistribution dist = ComputeRankDistribution(tree, k);
  KendallEvaluator evaluator(tree, k);
  auto direct = MeanTopKKendallViaFootrule(evaluator, dist);
  ASSERT_TRUE(direct.ok());
  for (int threads : {1, 2, 4, 8}) {
    EngineOptions opts;
    opts.num_threads = threads;
    opts.use_fast_bid_path = false;
    Engine engine(opts);
    auto got = engine.ConsensusTopK(tree, k, TopKMetric::kKendall);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->keys, direct->keys) << "threads " << threads;
    EXPECT_EQ(got->expected_distance, direct->expected_distance);
  }
}

// The parallel Theorem 4 stratum search must reproduce the sequential
// MedianTopKSymDiff bitwise — same answer keys and same expected distance —
// for every thread count.
TEST(EngineTest, MedianSymDiffBitwiseAcrossThreadCounts) {
  const int k = 3;
  for (uint64_t seed : {3u, 43u, 47u}) {
    AndXorTree tree = RandomDeepTree(seed);
    RankDistribution dist = ComputeRankDistribution(tree, k);
    auto direct = MedianTopKSymDiff(tree, dist);
    ASSERT_TRUE(direct.ok());
    for (int threads : {1, 2, 4, 8}) {
      EngineOptions opts;
      opts.num_threads = threads;
      opts.use_fast_bid_path = false;
      Engine engine(opts);
      auto got = engine.ConsensusTopK(tree, k, TopKMetric::kSymDiff,
                                      TopKAnswer::kMedian);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got->keys, direct->keys)
          << "seed " << seed << " threads " << threads;
      ASSERT_EQ(got->expected_distance, direct->expected_distance);
    }
  }
}

// Footrule and intersection-exact fan per-candidate Hungarian cost/profit
// columns across the pool; both must match the sequential core bitwise for
// every thread count.
TEST(EngineTest, AssignmentMetricsBitwiseAcrossThreadCounts) {
  const int k = 3;
  for (uint64_t seed : {5u, 53u}) {
    AndXorTree tree = RandomDeepTree(seed);
    RankDistribution dist = ComputeRankDistribution(tree, k);
    auto foot_direct = MeanTopKFootrule(dist);
    auto int_direct = MeanTopKIntersectionExact(dist);
    ASSERT_TRUE(foot_direct.ok());
    ASSERT_TRUE(int_direct.ok());
    for (int threads : {1, 2, 4, 8}) {
      EngineOptions opts;
      opts.num_threads = threads;
      opts.use_fast_bid_path = false;
      Engine engine(opts);
      auto foot = engine.ConsensusTopK(tree, k, TopKMetric::kFootrule);
      ASSERT_TRUE(foot.ok());
      ASSERT_EQ(foot->keys, foot_direct->keys)
          << "seed " << seed << " threads " << threads;
      ASSERT_EQ(foot->expected_distance, foot_direct->expected_distance);
      auto inter = engine.ConsensusTopK(tree, k, TopKMetric::kIntersection);
      ASSERT_TRUE(inter.ok());
      ASSERT_EQ(inter->keys, int_direct->keys)
          << "seed " << seed << " threads " << threads;
      ASSERT_EQ(inter->expected_distance, int_direct->expected_distance);
    }
  }
}

// The set-consensus paths chunk one marginal fold per leaf across the pool;
// worlds and expected distances must match the sequential core bitwise.
TEST(EngineTest, SetConsensusBitwiseAcrossThreadCounts) {
  for (uint64_t seed : {7u, 59u, 61u}) {
    AndXorTree tree = RandomDeepTree(seed);
    std::vector<NodeId> mean = MeanWorldSymDiff(tree);
    std::vector<NodeId> median = MedianWorldSymDiff(tree);
    double mean_expected = ExpectedSymDiffDistance(tree, mean);
    for (int threads : {1, 2, 4, 8}) {
      EngineOptions opts;
      opts.num_threads = threads;
      Engine engine(opts);
      ASSERT_EQ(engine.MeanWorldSymDiff(tree), mean)
          << "seed " << seed << " threads " << threads;
      ASSERT_EQ(engine.MedianWorldSymDiff(tree), median);
      ASSERT_EQ(engine.ExpectedSymDiffDistance(tree, mean), mean_expected);
      ASSERT_EQ(engine.LeafMarginals(tree), tree.LeafMarginals());
    }
  }
}

// ---------------------------------------------------------------------------
// Engine — consensus batch API
// ---------------------------------------------------------------------------

// A batch over mixed trees, metrics, answers, and k values must return, in
// every slot, exactly what the one-at-a-time API returns — bitwise, for
// every thread count.
TEST(EngineTest, ConsensusBatchMatchesIndividualQueries) {
  AndXorTree deep = RandomDeepTree(67);
  AndXorTree bid = RandomBidTree(71);
  std::vector<Engine::ConsensusQuery> queries = {
      {&deep, 2, TopKMetric::kSymDiff, TopKAnswer::kMean},
      {&deep, 3, TopKMetric::kSymDiff, TopKAnswer::kMedian},
      {&bid, 3, TopKMetric::kIntersection, TopKAnswer::kMean},
      {&bid, 2, TopKMetric::kIntersection, TopKAnswer::kMeanApprox},
      {&deep, 3, TopKMetric::kFootrule, TopKAnswer::kMean},
      {&bid, 2, TopKMetric::kKendall, TopKAnswer::kMean},
      {&deep, 1, TopKMetric::kSymDiff, TopKAnswer::kMeanUnrestricted},
  };
  for (int threads : {1, 2, 4, 8}) {
    EngineOptions opts;
    opts.num_threads = threads;
    Engine engine(opts);
    std::vector<Result<TopKResult>> batch =
        engine.EvaluateConsensusBatch(queries);
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      auto single = engine.ConsensusTopK(*queries[i].tree, queries[i].k,
                                         queries[i].metric, queries[i].answer);
      ASSERT_TRUE(batch[i].ok()) << "slot " << i << " threads " << threads;
      ASSERT_TRUE(single.ok());
      ASSERT_EQ(batch[i]->keys, single->keys)
          << "slot " << i << " threads " << threads;
      ASSERT_EQ(batch[i]->expected_distance, single->expected_distance);
    }
  }
}

// Two identical batch submissions must agree bitwise (seeded
// reproducibility: nothing in the batch path may depend on scheduling).
TEST(EngineTest, ConsensusBatchIsReproducible) {
  AndXorTree tree = RandomDeepTree(73);
  std::vector<Engine::ConsensusQuery> queries;
  for (int k = 1; k <= 4; ++k) {
    queries.push_back({&tree, k, TopKMetric::kSymDiff, TopKAnswer::kMedian});
    queries.push_back({&tree, k, TopKMetric::kFootrule, TopKAnswer::kMean});
  }
  EngineOptions opts;
  opts.num_threads = 4;
  Engine engine(opts);
  auto a = engine.EvaluateConsensusBatch(queries);
  auto b = engine.EvaluateConsensusBatch(queries);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok());
    ASSERT_TRUE(b[i].ok());
    ASSERT_EQ(a[i]->keys, b[i]->keys) << "slot " << i;
    ASSERT_EQ(a[i]->expected_distance, b[i]->expected_distance);
  }
}

// Per-query failures stay in their slot; healthy queries still succeed.
TEST(EngineTest, ConsensusBatchIsolatesFailures) {
  AndXorTree tree = RandomDeepTree(79);
  std::vector<Engine::ConsensusQuery> queries = {
      {&tree, 2, TopKMetric::kSymDiff, TopKAnswer::kMean},
      {&tree, 0, TopKMetric::kSymDiff, TopKAnswer::kMean},  // bad k
      {nullptr, 2, TopKMetric::kSymDiff, TopKAnswer::kMean},  // null tree
      {&tree, 2, TopKMetric::kFootrule, TopKAnswer::kMedian},  // unsupported
      {&tree, 2, TopKMetric::kFootrule, TopKAnswer::kMean},
  };
  EngineOptions opts;
  opts.num_threads = 4;
  Engine engine(opts);
  auto results = engine.EvaluateConsensusBatch(queries);
  ASSERT_EQ(results.size(), queries.size());
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_FALSE(results[2].ok());
  EXPECT_FALSE(results[3].ok());
  EXPECT_TRUE(results[4].ok());
  EXPECT_EQ(results[0]->keys,
            engine.ConsensusTopK(tree, 2, TopKMetric::kSymDiff)->keys);
}

// The cache-aware entry point: supplying the precomputed rank distribution
// must change nothing about the answer — bitwise — for every metric. This
// is the engine-level half of the serving layer's cache-parity guarantee.
TEST(EngineTest, ConsensusTopKWithDistMatchesFreshComputation) {
  const int k = 3;
  AndXorTree tree = RandomDeepTree(83);
  EngineOptions opts;
  opts.num_threads = 4;
  opts.use_fast_bid_path = false;
  Engine engine(opts);
  RankDistribution dist = engine.ComputeRankDistribution(tree, k);
  for (TopKMetric metric :
       {TopKMetric::kSymDiff, TopKMetric::kIntersection, TopKMetric::kFootrule,
        TopKMetric::kKendall}) {
    auto fresh = engine.ConsensusTopK(tree, k, metric);
    auto cached = engine.ConsensusTopKWithDist(tree, dist, metric);
    ASSERT_TRUE(fresh.ok());
    ASSERT_TRUE(cached.ok());
    EXPECT_EQ(cached->keys, fresh->keys);
    EXPECT_EQ(cached->expected_distance, fresh->expected_distance);
  }
}

// Batch slots carrying a shared precomputed distribution must agree with
// dist-free slots bitwise; a k mismatch fails its slot, never reinterprets.
TEST(EngineTest, ConsensusBatchHonorsSuppliedDistributions) {
  const int k = 3;
  AndXorTree tree = RandomDeepTree(89);
  EngineOptions opts;
  opts.num_threads = 4;
  opts.use_fast_bid_path = false;
  Engine engine(opts);
  RankDistribution dist = engine.ComputeRankDistribution(tree, k);
  std::vector<Engine::ConsensusQuery> queries = {
      {&tree, k, TopKMetric::kSymDiff, TopKAnswer::kMean, &dist},
      {&tree, k, TopKMetric::kSymDiff, TopKAnswer::kMean, nullptr},
      {&tree, k, TopKMetric::kFootrule, TopKAnswer::kMean, &dist},
      {&tree, k + 1, TopKMetric::kSymDiff, TopKAnswer::kMean,
       &dist},  // k mismatch
  };
  auto results = engine.EvaluateConsensusBatch(queries);
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[1].ok());
  ASSERT_TRUE(results[2].ok());
  EXPECT_EQ(results[0]->keys, results[1]->keys);
  EXPECT_EQ(results[0]->expected_distance, results[1]->expected_distance);
  ASSERT_FALSE(results[3].ok());
  EXPECT_NE(results[3].status().ToString().find("different k"),
            std::string::npos);
}

// A distribution computed for one tree must never be silently applied to
// another: the key sets differ, and the call fails instead of optimizing
// over the wrong statistics.
TEST(EngineTest, ConsensusTopKWithDistRejectsForeignDistribution) {
  AndXorTree tree = RandomDeepTree(91, 8);
  AndXorTree other = RandomDeepTree(93, 5);  // different key count
  EngineOptions opts;
  opts.use_fast_bid_path = false;
  Engine engine(opts);
  RankDistribution foreign = engine.ComputeRankDistribution(other, 3);
  auto result =
      engine.ConsensusTopKWithDist(tree, foreign, TopKMetric::kSymDiff);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("different tree"),
            std::string::npos);
}

TEST(EngineTest, ConsensusTopKRejectsBadArguments) {
  AndXorTree tree = RandomDeepTree(17);
  Engine engine;
  EXPECT_FALSE(engine.ConsensusTopK(tree, 0, TopKMetric::kSymDiff).ok());
  EXPECT_FALSE(engine
                   .ConsensusTopK(tree, 3, TopKMetric::kFootrule,
                                  TopKAnswer::kMedian)
                   .ok());
  EXPECT_FALSE(engine
                   .ConsensusTopK(tree, 3, TopKMetric::kSymDiff,
                                  TopKAnswer::kMeanApprox)
                   .ok());
}

TEST(EngineTest, SetConsensusDelegatesToCore) {
  AndXorTree tree = RandomDeepTree(19);
  Engine engine;
  EXPECT_EQ(engine.MeanWorldSymDiff(tree), MeanWorldSymDiff(tree));
  EXPECT_EQ(engine.MedianWorldSymDiff(tree), MedianWorldSymDiff(tree));
}

// ---------------------------------------------------------------------------
// Engine — chunked Monte Carlo
// ---------------------------------------------------------------------------

TEST(EngineTest, MonteCarloBitwiseEqualAcrossThreadCounts) {
  AndXorTree tree = RandomDeepTree(23);
  const uint64_t seed = 42;
  McEstimate reference;
  for (int threads : {1, 2, 4, 8}) {
    EngineOptions opts;
    opts.num_threads = threads;
    Engine engine(opts);
    McEstimate e = engine.EstimateOverWorlds(
        tree, 2000, seed,
        [](const std::vector<NodeId>& world) {
          return static_cast<double>(world.size());
        });
    if (threads == 1) {
      reference = e;
    } else {
      // Bitwise: the chunk decomposition, per-chunk Rng streams, and merge
      // order are all independent of the schedule.
      ASSERT_EQ(e.mean, reference.mean) << "threads " << threads;
      ASSERT_EQ(e.std_error, reference.std_error) << "threads " << threads;
      ASSERT_EQ(e.samples, reference.samples);
    }
  }
}

TEST(EngineTest, MonteCarloReproducibleAndSeedSensitive) {
  AndXorTree tree = RandomDeepTree(29);
  EngineOptions opts;
  opts.num_threads = 4;
  Engine engine(opts);
  auto size_of = [](const std::vector<NodeId>& world) {
    return static_cast<double>(world.size());
  };
  McEstimate a = engine.EstimateOverWorlds(tree, 1000, 7, size_of);
  McEstimate b = engine.EstimateOverWorlds(tree, 1000, 7, size_of);
  McEstimate c = engine.EstimateOverWorlds(tree, 1000, 8, size_of);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.std_error, b.std_error);
  EXPECT_NE(a.mean, c.mean);
}

TEST(EngineTest, MonteCarloTopKDistanceCoversEnumeratedTruth) {
  const int k = 3;
  AndXorTree tree = RandomDeepTree(31, 6);
  RankDistribution dist = ComputeRankDistribution(tree, k);
  std::vector<KeyId> answer = MeanTopKSymDiff(dist).keys;
  auto exact =
      EnumExpectedTopKDistance(tree, answer, k, TopKMetric::kSymDiff);
  ASSERT_TRUE(exact.ok());
  EngineOptions opts;
  opts.num_threads = 4;
  Engine engine(opts);
  McEstimate est = engine.McExpectedTopKDistance(
      tree, answer, k, TopKMetric::kSymDiff, 20000, 123);
  EXPECT_EQ(est.samples, 20000);
  EXPECT_TRUE(est.Covers(*exact, 4.0))
      << "exact " << *exact << " vs [" << est.ci95_low() << ", "
      << est.ci95_high() << "]";
}

// The adaptive chunk size (mc_chunk_size = 0) must resolve to the
// documented pure function of (samples, threads), be recorded in the
// result, and reproduce bitwise when the recorded value is pinned — that
// recording is what keeps adaptive runs replayable.
TEST(EngineTest, AdaptiveMonteCarloChunkIsRecordedAndReplayable) {
  AndXorTree tree = RandomDeepTree(97);
  auto size_of = [](const std::vector<NodeId>& world) {
    return static_cast<double>(world.size());
  };
  const int samples = 5000;
  for (int threads : {1, 4}) {
    EngineOptions adaptive_opts;
    adaptive_opts.num_threads = threads;
    adaptive_opts.mc_chunk_size = 0;  // adaptive
    Engine adaptive(adaptive_opts);
    McEstimate a = adaptive.EstimateOverWorlds(tree, samples, 11, size_of);
    EXPECT_EQ(a.chunk_size,
              AdaptiveMcChunkSize(samples, adaptive.num_threads()));
    EXPECT_GT(a.chunk_size, 0);
    // Same configuration, same seed: bitwise reproducible.
    McEstimate b = adaptive.EstimateOverWorlds(tree, samples, 11, size_of);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.std_error, b.std_error);
    // Pinning the recorded chunk size replays the run exactly, on any
    // thread count.
    EngineOptions pinned_opts;
    pinned_opts.num_threads = 8;
    pinned_opts.mc_chunk_size = a.chunk_size;
    Engine pinned(pinned_opts);
    McEstimate replay = pinned.EstimateOverWorlds(tree, samples, 11, size_of);
    EXPECT_EQ(replay.mean, a.mean);
    EXPECT_EQ(replay.std_error, a.std_error);
    EXPECT_EQ(replay.chunk_size, a.chunk_size);
  }
  // The fixed default keeps recording its value too.
  Engine fixed;
  McEstimate fixed_estimate =
      fixed.EstimateOverWorlds(tree, samples, 11, size_of);
  EXPECT_EQ(fixed_estimate.chunk_size, fixed.options().mc_chunk_size);
}

TEST(EngineTest, AdaptiveChunkSizeIsClampedAndMonotoneInWorkload) {
  // Small workloads floor at 32; huge ones cap at 4096; in between the
  // chunk grows with the workload and shrinks with the thread count.
  EXPECT_EQ(AdaptiveMcChunkSize(1, 1), 32);
  EXPECT_EQ(AdaptiveMcChunkSize(100, 8), 32);
  EXPECT_EQ(AdaptiveMcChunkSize(10000000, 1), 4096);
  EXPECT_GE(AdaptiveMcChunkSize(100000, 2), AdaptiveMcChunkSize(100000, 8));
  EXPECT_GE(AdaptiveMcChunkSize(200000, 4), AdaptiveMcChunkSize(50000, 4));
  // Degenerate arguments stay sane.
  EXPECT_EQ(AdaptiveMcChunkSize(0, 4), 32);
  EXPECT_EQ(AdaptiveMcChunkSize(1000, 0), AdaptiveMcChunkSize(1000, 1));
}

TEST(EngineTest, MonteCarloHandlesDegenerateSampleCounts) {
  AndXorTree tree = RandomDeepTree(37);
  Engine engine;
  McEstimate none = engine.EstimateOverWorlds(
      tree, 0, 1, [](const std::vector<NodeId>&) { return 1.0; });
  EXPECT_EQ(none.samples, 0);
  McEstimate one = engine.EstimateOverWorlds(
      tree, 1, 1, [](const std::vector<NodeId>&) { return 1.0; });
  EXPECT_EQ(one.samples, 1);
  EXPECT_EQ(one.mean, 1.0);
  EXPECT_EQ(one.std_error, 0.0);
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include "workload/generators.h"

#include <gtest/gtest.h>

#include <set>

#include "model/possible_worlds.h"

namespace cpdb {
namespace {

TEST(WorkloadTest, TupleIndependentIsValidAndTieFree) {
  Rng rng(1);
  auto tree = RandomTupleIndependent(50, &rng);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->NumLeaves(), 50);
  std::set<double> scores;
  for (NodeId l : tree->LeafIds()) {
    scores.insert(tree->node(l).leaf.score);
  }
  EXPECT_EQ(scores.size(), 50u) << "scores must be pairwise distinct";
}

TEST(WorkloadTest, BidBlocksRespectMassConstraint) {
  Rng rng(2);
  RandomTreeOptions opts;
  opts.num_keys = 30;
  opts.max_alternatives = 4;
  std::vector<Block> blocks = RandomBidBlocks(opts, &rng);
  ASSERT_EQ(blocks.size(), 30u);
  std::set<double> scores;
  for (const Block& b : blocks) {
    double mass = 0.0;
    for (const BlockAlternative& a : b) {
      EXPECT_GT(a.prob, 0.0);
      mass += a.prob;
      scores.insert(a.alt.score);
      EXPECT_EQ(a.alt.key, b[0].alt.key);
    }
    EXPECT_LE(mass, 1.0 + 1e-12);
    EXPECT_GE(mass, opts.min_xor_mass - 1e-9);
  }
  EXPECT_EQ(scores.size(), [&] {
    size_t total = 0;
    for (const Block& b : blocks) total += b.size();
    return total;
  }());
}

TEST(WorkloadTest, RandomAndXorTreesValidateAcrossSeeds) {
  for (int seed = 0; seed < 40; ++seed) {
    Rng rng(static_cast<uint64_t>(seed));
    RandomTreeOptions opts;
    opts.num_keys = 8;
    opts.max_depth = 4;
    opts.max_alternatives = 3;
    auto tree = RandomAndXorTree(opts, &rng);
    ASSERT_TRUE(tree.ok()) << "seed " << seed << ": "
                           << tree.status().ToString();
    // Every key must be reachable.
    EXPECT_EQ(tree->Keys().size(), 8u) << "seed " << seed;
    // Tie-free scores.
    std::set<double> scores;
    for (NodeId l : tree->LeafIds()) scores.insert(tree->node(l).leaf.score);
    EXPECT_EQ(static_cast<int>(scores.size()), tree->NumLeaves());
  }
}

TEST(WorkloadTest, RandomAndXorTreeRejectsBadOptions) {
  Rng rng(3);
  RandomTreeOptions opts;
  opts.num_keys = 0;
  EXPECT_FALSE(RandomAndXorTree(opts, &rng).ok());
}

TEST(WorkloadTest, GroupByMatrixIsStochastic) {
  Rng rng(4);
  auto probs = RandomGroupByMatrix(40, 6, 0.9, 0.2, &rng);
  ASSERT_EQ(probs.size(), 40u);
  for (const auto& row : probs) {
    ASSERT_EQ(row.size(), 6u);
    double total = 0.0;
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_LE(total, 1.0 + 1e-9);
    EXPECT_GT(total, 0.0);
  }
}

TEST(WorkloadTest, GroupByZipfSkewsColumnMass) {
  Rng rng(5);
  auto probs = RandomGroupByMatrix(500, 8, 1.2, 0.1, &rng);
  std::vector<double> col(8, 0.0);
  for (const auto& row : probs) {
    for (size_t j = 0; j < row.size(); ++j) col[j] += row[j];
  }
  // The first (most popular) group should dominate the last.
  EXPECT_GT(col[0], 2.0 * col[7]);
}

TEST(WorkloadTest, DeterministicGivenSeed) {
  RandomTreeOptions opts;
  opts.num_keys = 6;
  opts.max_depth = 3;
  Rng rng1(99), rng2(99);
  auto t1 = RandomAndXorTree(opts, &rng1);
  auto t2 = RandomAndXorTree(opts, &rng2);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t1->ToString(), t2->ToString());
}

}  // namespace
}  // namespace cpdb

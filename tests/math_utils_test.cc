// Copyright 2026 The ConsensusDB Authors

#include "common/math_utils.h"

#include <gtest/gtest.h>

namespace cpdb {
namespace {

TEST(MathUtilsTest, HarmonicNumbers) {
  EXPECT_DOUBLE_EQ(HarmonicNumber(0), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(1), 1.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(2), 1.5);
  EXPECT_NEAR(HarmonicNumber(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

TEST(MathUtilsTest, ApproxEqual) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0));
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  EXPECT_TRUE(ApproxEqual(1e12, 1e12 * (1 + 1e-10)));
}

TEST(MathUtilsTest, ClampProbability) {
  EXPECT_EQ(ClampProbability(-0.1), 0.0);
  EXPECT_EQ(ClampProbability(0.5), 0.5);
  EXPECT_EQ(ClampProbability(1.5), 1.0);
}

TEST(MathUtilsTest, MaxPlusConvolveBasic) {
  std::vector<double> a = {0.0, 1.0};      // size 0 value 0, size 1 value 1
  std::vector<double> b = {0.0, 5.0, 2.0};
  std::vector<double> out = MaxPlusConvolve(a, b, 3);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 5.0);  // max(0+5, 1+0)
  EXPECT_DOUBLE_EQ(out[2], 6.0);  // 1+5
  EXPECT_DOUBLE_EQ(out[3], 3.0);  // 1+2
}

TEST(MathUtilsTest, MaxPlusConvolveRespectsInfeasible) {
  std::vector<double> a = {0.0, kNegInf, 2.0};
  std::vector<double> b = {kNegInf, 1.0};
  std::vector<double> out = MaxPlusConvolve(a, b, 4);
  EXPECT_EQ(out[0], kNegInf);        // needs b[0]
  EXPECT_DOUBLE_EQ(out[1], 1.0);     // a[0]+b[1]
  EXPECT_EQ(out[2], kNegInf);        // a[1] infeasible, b[0] infeasible
  EXPECT_DOUBLE_EQ(out[3], 3.0);     // a[2]+b[1]
}

TEST(MathUtilsTest, MaxPlusConvolveTruncates) {
  std::vector<double> a = {0.0, 0.0, 0.0};
  std::vector<double> b = {0.0, 0.0, 0.0};
  std::vector<double> out = MaxPlusConvolve(a, b, 2);
  EXPECT_EQ(out.size(), 3u);
}

TEST(MathUtilsTest, StableSumMatchesNaiveOnBenignInput) {
  std::vector<double> v = {0.1, 0.2, 0.3, 0.4};
  EXPECT_NEAR(StableSum(v), 1.0, 1e-15);
}

TEST(MathUtilsTest, StableSumHandlesCancellation) {
  // Sum many tiny values against a large one; Kahan keeps full precision.
  std::vector<double> v = {1e16};
  for (int i = 0; i < 10000; ++i) v.push_back(1.0);
  EXPECT_DOUBLE_EQ(StableSum(v), 1e16 + 10000.0);
}

}  // namespace
}  // namespace cpdb

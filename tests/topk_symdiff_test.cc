// Copyright 2026 The ConsensusDB Authors
//
// Section 5.2: mean Top-k (Theorem 3) and median Top-k (Theorem 4) under the
// normalized symmetric difference metric.

#include "core/topk_symdiff.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <set>

#include "common/rng.h"
#include "core/evaluation.h"
#include "model/possible_worlds.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

constexpr int kK = 3;

class TopKSymDiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(TopKSymDiffProperty, EvaluatorMatchesEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 37 + 5);
  RandomTreeOptions opts;
  opts.num_keys = 6;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, kK);

  // Random candidate answers of size k (and one smaller).
  std::vector<KeyId> keys = tree->Keys();
  for (int trial = 0; trial < 5; ++trial) {
    rng.Shuffle(&keys);
    size_t size = trial == 0 ? std::min<size_t>(keys.size(), 2)
                             : std::min<size_t>(keys.size(), kK);
    std::vector<KeyId> answer(keys.begin(), keys.begin() + size);
    auto expected =
        EnumExpectedTopKDistance(*tree, answer, kK, TopKMetric::kSymDiff);
    ASSERT_TRUE(expected.ok());
    EXPECT_NEAR(ExpectedTopKSymDiff(dist, answer), *expected, 1e-9);
  }
}

TEST_P(TopKSymDiffProperty, MeanBeatsAllSizeKSubsets) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 61 + 3);
  RandomTreeOptions opts;
  opts.num_keys = 6;
  opts.max_depth = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, kK);
  TopKResult mean = MeanTopKSymDiff(dist);

  // Brute force over all k-subsets of keys.
  std::vector<KeyId> keys = tree->Keys();
  int n = static_cast<int>(keys.size());
  if (n < kK) GTEST_SKIP();
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> idx(static_cast<size_t>(kK));
  std::function<void(int, int)> choose = [&](int start, int depth) {
    if (depth == kK) {
      std::vector<KeyId> answer;
      for (int i : idx) answer.push_back(keys[static_cast<size_t>(i)]);
      best = std::min(best, ExpectedTopKSymDiff(dist, answer));
      return;
    }
    for (int i = start; i < n; ++i) {
      idx[static_cast<size_t>(depth)] = i;
      choose(i + 1, depth + 1);
    }
  };
  choose(0, 0);
  EXPECT_NEAR(mean.expected_distance, best, 1e-9);
}

TEST_P(TopKSymDiffProperty, MedianMatchesWorldArgmin) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 83 + 19);
  RandomTreeOptions opts;
  opts.num_keys = 6;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, kK);

  auto median = MedianTopKSymDiff(*tree, dist);
  ASSERT_TRUE(median.ok()) << median.status().ToString();

  // Ground truth: the best Top-k answer over all possible worlds.
  auto worlds = EnumerateWorlds(*tree);
  ASSERT_TRUE(worlds.ok());
  double best = std::numeric_limits<double>::infinity();
  std::set<std::vector<KeyId>> world_answers;
  for (const World& w : *worlds) {
    std::vector<KeyId> answer = TopKOfWorld(*tree, w.leaf_ids, kK);
    world_answers.insert(answer);
    best = std::min(best, ExpectedTopKSymDiff(dist, answer));
  }
  EXPECT_NEAR(median->expected_distance, best, 1e-9)
      << "median DP missed the optimal world answer";

  // The median must be the Top-k answer of some positive-probability world
  // (as a set; the DP orders by score like TopKOfWorld does).
  EXPECT_TRUE(world_answers.count(median->keys) > 0)
      << "median answer is not realizable";
}

TEST_P(TopKSymDiffProperty, UnrestrictedMeanBeatsAllSubsetsOfAnySize) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 449 + 27);
  RandomTreeOptions opts;
  opts.num_keys = 6;
  opts.max_depth = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, kK);
  TopKResult unrestricted = MeanTopKSymDiffUnrestricted(dist);

  std::vector<KeyId> keys = tree->Keys();
  int n = static_cast<int>(keys.size());
  if (n > 14) GTEST_SKIP();
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<KeyId> answer;
    for (int b = 0; b < n; ++b) {
      if (mask & (1u << b)) answer.push_back(keys[static_cast<size_t>(b)]);
    }
    EXPECT_GE(ExpectedTopKSymDiff(dist, answer),
              unrestricted.expected_distance - 1e-9);
  }
  // The size-k mean can never beat the unrestricted optimum; the median,
  // being realizable, can never beat it either.
  EXPECT_GE(MeanTopKSymDiff(dist).expected_distance,
            unrestricted.expected_distance - 1e-9);
  auto median = MedianTopKSymDiff(*tree, dist);
  ASSERT_TRUE(median.ok());
  EXPECT_GE(median->expected_distance, unrestricted.expected_distance - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKSymDiffProperty, ::testing::Range(0, 20));

TEST(TopKSymDiffTest, MeanIsOrderedByTopKProbability) {
  Rng rng(123);
  RandomTreeOptions opts;
  opts.num_keys = 10;
  auto tree = RandomBid(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, 4);
  TopKResult mean = MeanTopKSymDiff(dist);
  ASSERT_EQ(mean.keys.size(), 4u);
  for (size_t i = 1; i < mean.keys.size(); ++i) {
    EXPECT_GE(dist.PrTopK(mean.keys[i - 1]), dist.PrTopK(mean.keys[i]) - 1e-12);
  }
  // Every excluded key has no larger probability than the included minimum.
  double min_included = dist.PrTopK(mean.keys.back());
  for (KeyId key : dist.keys()) {
    if (std::find(mean.keys.begin(), mean.keys.end(), key) == mean.keys.end()) {
      EXPECT_LE(dist.PrTopK(key), min_included + 1e-12);
    }
  }
}

TEST(TopKSymDiffTest, CertainDatabaseMedianEqualsTrueTopK) {
  // Deterministic database: median = mean = the true Top-k.
  std::vector<IndependentTuple> tuples;
  for (int i = 0; i < 6; ++i) {
    IndependentTuple t;
    t.alt.key = i;
    t.alt.score = 10.0 * (6 - i);
    t.prob = 1.0;
    tuples.push_back(t);
  }
  auto tree = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, 3);
  TopKResult mean = MeanTopKSymDiff(dist);
  auto median = MedianTopKSymDiff(*tree, dist);
  ASSERT_TRUE(median.ok());
  std::vector<KeyId> truth = {0, 1, 2};
  EXPECT_EQ(mean.keys, truth);
  EXPECT_EQ(median->keys, truth);
  EXPECT_NEAR(mean.expected_distance, 0.0, 1e-12);
}

TEST(TopKSymDiffTest, SmallWorldsAreConsidered) {
  // A database that usually has fewer than k tuples: the median answer must
  // be a small world, not a padded size-k set.
  std::vector<IndependentTuple> tuples;
  for (int i = 0; i < 2; ++i) {
    IndependentTuple t;
    t.alt.key = i;
    t.alt.score = i + 1.0;
    t.prob = 0.9;
    tuples.push_back(t);
  }
  auto tree = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree.ok());
  const int k = 3;
  RankDistribution dist = ComputeRankDistribution(*tree, k);
  auto median = MedianTopKSymDiff(*tree, dist);
  ASSERT_TRUE(median.ok());
  EXPECT_EQ(median->keys.size(), 2u);  // both tuples, never three
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Flat-vs-pointer differential suite: the flattened fold (FlatTree +
// PolyArena + vectorized kernels) must be bitwise indistinguishable from
// the retained pointer-tree fold on every rewired path — rank
// distributions, pairwise order probabilities, Kendall q statistics, leaf
// marginals, and the raw generating function — across random generator
// trees of all three structural families and engine thread counts
// {1, 2, 4, 8}. Also pins the structural claims: leaf-table order equals
// LeafIds() order, precompiled marginals match the pointer walks bit for
// bit, and slot recycling keeps the arena working set O(depth) rather than
// O(nodes).

#include "model/flat_tree.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/rank_distribution.h"
#include "core/topk_kendall.h"
#include "engine/engine.h"
#include "model/generating_function.h"
#include "poly/poly1.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

// The three structural families the generators produce: tuple-independent,
// BID blocks, and deep correlated and/xor trees.
std::vector<AndXorTree> GeneratorTrees(uint64_t seed) {
  std::vector<AndXorTree> trees;
  Rng rng(seed);
  RandomTreeOptions opts;
  opts.num_keys = 7;
  opts.max_depth = 4;
  opts.max_alternatives = 3;

  auto independent = RandomTupleIndependent(6, &rng);
  EXPECT_TRUE(independent.ok());
  if (independent.ok()) trees.push_back(*std::move(independent));

  auto bid = RandomBid(opts, &rng);
  EXPECT_TRUE(bid.ok());
  if (bid.ok()) trees.push_back(*std::move(bid));

  auto deep = RandomAndXorTree(opts, &rng);
  EXPECT_TRUE(deep.ok());
  if (deep.ok()) trees.push_back(*std::move(deep));

  return trees;
}

class FlatTreeDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlatTreeDifferential, LeafTableMatchesPointerTree) {
  for (const AndXorTree& tree : GeneratorTrees(GetParam())) {
    const FlatTree flat = FlatTree::Compile(tree);
    const std::vector<NodeId>& leaf_ids = tree.LeafIds();
    ASSERT_EQ(flat.num_leaves(), tree.NumLeaves());

    // Leaf-table order is LeafIds() order, and the compile-time marginals
    // are bitwise the pointer walks' values.
    const std::vector<double> pointer_marginals = tree.LeafMarginals();
    for (int i = 0; i < flat.num_leaves(); ++i) {
      const FlatLeaf& leaf = flat.leaves()[static_cast<size_t>(i)];
      ASSERT_EQ(leaf.node, leaf_ids[static_cast<size_t>(i)]);
      const TupleAlternative& alt = tree.node(leaf.node).leaf;
      ASSERT_EQ(leaf.key, alt.key);
      ASSERT_EQ(leaf.score, alt.score);
      ASSERT_EQ(leaf.marginal, tree.LeafMarginal(leaf.node));
      ASSERT_EQ(leaf.marginal,
                pointer_marginals[static_cast<size_t>(leaf.node)]);
    }

    // Slot recycling: the live high-water mark must undercut node count on
    // anything but trivial trees (and is bounded by it always).
    ASSERT_LE(flat.num_slots(), tree.NumNodes());
    ASSERT_GT(flat.num_slots(), 0);

    // The dump used by `cpdb_cli dump-flat` names every op and leaf.
    const std::string dump = flat.ToString();
    EXPECT_NE(dump.find("flat_tree ops="), std::string::npos);
  }
}

TEST_P(FlatTreeDifferential, GeneratingFunctionBitwiseEqualsPointerFold) {
  // The raw fold: world-size generating function (every leaf tagged x),
  // flat vs pointer, bitwise.
  const int kMaxDegree = 24;
  for (const AndXorTree& tree : GeneratorTrees(GetParam())) {
    auto leaf_poly = [&](NodeId) {
      return Poly1::Monomial(kMaxDegree, 1, 1.0);
    };
    auto make_const = [&](double c) { return Poly1::Constant(kMaxDegree, c); };
    const Poly1 reference =
        EvalGeneratingFunction<Poly1>(tree, leaf_poly, make_const);

    const FlatTree flat = FlatTree::Compile(tree);
    std::vector<double> got(kMaxDegree + 1);
    flat.EvalGeneratingFunction(
        kMaxDegree, 0, [](int, double* row) { row[1] = 1.0; }, got.data(),
        &FlatFoldScratch());
    for (int d = 0; d <= kMaxDegree; ++d) {
      ASSERT_EQ(got[static_cast<size_t>(d)], reference.Coeff(d))
          << "degree " << d;
    }
  }
}

TEST_P(FlatTreeDifferential, RankDistributionBitwiseEqualsPointerFold) {
  const int k = 5;
  for (const AndXorTree& tree : GeneratorTrees(GetParam())) {
    const RankDistribution reference = ComputeRankDistributionPointer(tree, k);
    const RankDistribution flat_dist = ComputeRankDistribution(tree, k);
    ASSERT_EQ(flat_dist.keys(), reference.keys());
    for (KeyId key : reference.keys()) {
      for (int i = 1; i <= k; ++i) {
        ASSERT_EQ(flat_dist.PrRankEq(key, i), reference.PrRankEq(key, i))
            << "key " << key << " rank " << i;
        ASSERT_EQ(flat_dist.PrRankLe(key, i), reference.PrRankLe(key, i));
      }
    }

    // Per-leaf contributions agree bitwise too (flat target index i is
    // LeafIds()[i] by the leaf-table order test above).
    const FlatTree flat = FlatTree::Compile(tree);
    for (int i = 0; i < flat.num_leaves(); ++i) {
      ASSERT_EQ(LeafRankContribution(flat, i, k),
                LeafRankContribution(tree, tree.LeafIds()[static_cast<size_t>(i)],
                                     k));
    }
  }
}

TEST_P(FlatTreeDifferential, PairwiseOrderAndKendallBitwiseEqualPointerFold) {
  const int k = 3;
  for (const AndXorTree& tree : GeneratorTrees(GetParam())) {
    const FlatTree flat = FlatTree::Compile(tree);
    const std::vector<KeyId> keys = tree.Keys();
    for (KeyId u : keys) {
      for (KeyId v : keys) {
        if (u == v) continue;
        ASSERT_EQ(PrRanksBefore(flat, u, v), PrRanksBeforePointer(tree, u, v))
            << "u " << u << " v " << v;
        ASSERT_EQ(PrInTopKAndBefore(flat, u, v, k),
                  PrInTopKAndBefore(tree, u, v, k))
            << "u " << u << " v " << v;
      }
    }
  }
}

TEST_P(FlatTreeDifferential, EnginePathsBitwiseEqualPointerFoldAcrossThreads) {
  const int k = 4;
  for (const AndXorTree& tree : GeneratorTrees(GetParam())) {
    const RankDistribution dist_ref = ComputeRankDistributionPointer(tree, k);
    const std::vector<KeyId> keys = tree.Keys();
    std::vector<std::vector<double>> pairwise_ref(
        keys.size(), std::vector<double>(keys.size(), 0.0));
    for (size_t i = 0; i < keys.size(); ++i) {
      for (size_t j = 0; j < keys.size(); ++j) {
        if (i == j) continue;
        pairwise_ref[i][j] = PrRanksBeforePointer(tree, keys[i], keys[j]);
      }
    }
    const std::vector<double> marginals_ref = tree.LeafMarginals();

    for (int threads : {1, 2, 4, 8}) {
      EngineOptions opts;
      opts.num_threads = threads;
      // Force the general (flat) path even on block-independent trees; the
      // fast BID path is a different algorithm with different bits.
      opts.use_fast_bid_path = false;
      Engine engine(opts);

      const RankDistribution dist = engine.ComputeRankDistribution(tree, k);
      ASSERT_EQ(dist.keys(), dist_ref.keys()) << "threads " << threads;
      for (KeyId key : dist_ref.keys()) {
        for (int i = 1; i <= k; ++i) {
          ASSERT_EQ(dist.PrRankEq(key, i), dist_ref.PrRankEq(key, i))
              << "threads " << threads << " key " << key << " rank " << i;
          ASSERT_EQ(dist.PrRankLe(key, i), dist_ref.PrRankLe(key, i));
        }
      }

      ASSERT_EQ(engine.PairwiseOrderProbabilities(tree, keys), pairwise_ref)
          << "threads " << threads;
      ASSERT_EQ(engine.LeafMarginals(tree), marginals_ref)
          << "threads " << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatTreeDifferential,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Structure-specific pins (not randomized)
// ---------------------------------------------------------------------------

TupleAlternative Alt(KeyId key, double score) {
  TupleAlternative a;
  a.key = key;
  a.score = score;
  return a;
}

TEST(FlatTreeTest, DeepChainCompilesToConstantSlotCount) {
  // The compile-time analogue of the fold-memory bugfix: a 20000-deep XOR
  // chain must compile to 2 scratch slots (child + accumulator), so the
  // arena working set is independent of depth.
  AndXorTree tree;
  NodeId node = tree.AddLeaf(Alt(1, 1));
  for (int i = 0; i < 20000; ++i) node = tree.AddXor({node}, {0.5});
  tree.SetRoot(node);
  ASSERT_TRUE(tree.Validate().ok());

  const FlatTree flat = FlatTree::Compile(tree);
  EXPECT_EQ(flat.num_slots(), 2);
  EXPECT_EQ(flat.num_leaves(), 1);

  // And the fold over it matches the pointer template bitwise.
  auto leaf_poly = [&](NodeId) { return Poly1::Monomial(1, 1, 1.0); };
  auto make_const = [&](double c) { return Poly1::Constant(1, c); };
  const Poly1 reference =
      EvalGeneratingFunction<Poly1>(tree, leaf_poly, make_const);
  double got[2];
  flat.EvalGeneratingFunction(
      1, 0, [](int, double* row) { row[1] = 1.0; }, got,
      &FlatFoldScratch());
  EXPECT_EQ(got[0], reference.Coeff(0));
  EXPECT_EQ(got[1], reference.Coeff(1));
}

TEST(FlatTreeTest, WideAndCompilesToConstantSlotCount) {
  // A wide AND folds each child into the running product immediately, so
  // 500 children still need only ~3 slots.
  AndXorTree tree;
  std::vector<NodeId> blocks;
  for (int i = 0; i < 500; ++i) {
    blocks.push_back(tree.AddXor({tree.AddLeaf(Alt(i, i))}, {0.5}));
  }
  tree.SetRoot(tree.AddAnd(std::move(blocks)));
  ASSERT_TRUE(tree.Validate().ok());

  const FlatTree flat = FlatTree::Compile(tree);
  EXPECT_LE(flat.num_slots(), 4);
  EXPECT_EQ(flat.num_leaves(), 500);
}

TEST(FlatTreeTest, EmptyTreeYieldsEmptyFlatTree) {
  AndXorTree tree;  // no root set
  const FlatTree flat = FlatTree::Compile(tree);
  EXPECT_EQ(flat.num_leaves(), 0);
  EXPECT_EQ(flat.num_slots(), 0);
  EXPECT_TRUE(flat.ops().empty());
}

TEST(FlatTreeTest, DumpListsEveryOpAndLeaf) {
  AndXorTree tree;
  NodeId a = tree.AddLeaf(Alt(1, 2.5));
  NodeId b = tree.AddLeaf(Alt(1, 1.5));
  NodeId x = tree.AddXor({a, b}, {0.25, 0.5});
  NodeId c = tree.AddLeaf(Alt(2, 3.0));
  tree.SetRoot(tree.AddAnd({x, c}));
  ASSERT_TRUE(tree.Validate().ok());

  const FlatTree flat = FlatTree::Compile(tree);
  const std::string dump = flat.ToString();
  EXPECT_NE(dump.find("xor_init"), std::string::npos);
  EXPECT_NE(dump.find("xor_accum"), std::string::npos);
  EXPECT_NE(dump.find("mul"), std::string::npos);
  EXPECT_NE(dump.find("leaf"), std::string::npos);
  // XOR leftover mass 1 - 0.25 - 0.5 = 0.25 is precomputed on the init op.
  EXPECT_NE(dump.find("0.25"), std::string::npos);
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Section 4.2: expected Jaccard distance (Lemma 1) and the sorted-prefix
// mean/median world algorithms (Lemma 2), validated by brute force.

#include "core/jaccard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "core/evaluation.h"
#include "model/builders.h"
#include "model/possible_worlds.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

TEST(JaccardDistanceTest, BasicProperties) {
  EXPECT_DOUBLE_EQ(JaccardDistance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({1}, {2}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({}, {5}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2}, {2, 3}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2, 3}, {2, 3}), 1.0 / 3.0);
}

TEST(JaccardDistanceTest, TriangleInequalityOnRandomSets) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    auto random_set = [&]() {
      std::vector<NodeId> s;
      for (NodeId i = 0; i < 8; ++i) {
        if (rng.Bernoulli(0.5)) s.push_back(i);
      }
      return s;
    };
    std::vector<NodeId> a = random_set(), b = random_set(), c = random_set();
    EXPECT_LE(JaccardDistance(a, c),
              JaccardDistance(a, b) + JaccardDistance(b, c) + 1e-12);
  }
}

class JaccardProperty : public ::testing::TestWithParam<int> {};

TEST_P(JaccardProperty, Lemma1MatchesEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 211 + 9);
  RandomTreeOptions opts;
  opts.num_keys = 5;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());

  // Random candidate world W.
  std::vector<NodeId> world;
  for (NodeId l : tree->LeafIds()) {
    if (rng.Bernoulli(0.4)) world.push_back(l);
  }
  std::sort(world.begin(), world.end());

  auto expected = EnumExpectedSetDistance(*tree, world, SetMetric::kJaccard);
  ASSERT_TRUE(expected.ok());
  EXPECT_NEAR(ExpectedJaccardDistance(*tree, world), *expected, 1e-9);
}

TEST_P(JaccardProperty, MeanWorldBeatsAllSubsetsOnTupleIndependent) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 401 + 13);
  int n = 3 + GetParam() % 6;  // 3..8 tuples
  auto tree = RandomTupleIndependent(n, &rng);
  ASSERT_TRUE(tree.ok());

  auto mean = MeanWorldJaccard(*tree);
  ASSERT_TRUE(mean.ok());
  double mean_cost = ExpectedJaccardDistance(*tree, *mean);

  const std::vector<NodeId>& leaves = tree->LeafIds();
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<NodeId> subset;
    for (int b = 0; b < n; ++b) {
      if (mask & (1u << b)) subset.push_back(leaves[static_cast<size_t>(b)]);
    }
    std::sort(subset.begin(), subset.end());
    best = std::min(best, ExpectedJaccardDistance(*tree, subset));
  }
  EXPECT_NEAR(mean_cost, best, 1e-9)
      << "prefix scan missed the optimum (Lemma 2 violated?)";
}

TEST_P(JaccardProperty, BidMedianBeatsItsCandidateFamily) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 701 + 29);
  RandomTreeOptions opts;
  opts.num_keys = 5;
  opts.max_alternatives = 3;
  auto tree = RandomBid(opts, &rng);
  ASSERT_TRUE(tree.ok());

  auto median = MedianWorldJaccardBid(*tree);
  ASSERT_TRUE(median.ok());
  double median_cost = ExpectedJaccardDistance(*tree, *median);

  // The answer must be a possible world (or the empty world, possible since
  // every generated block has leftover mass).
  auto worlds = EnumerateWorlds(*tree);
  ASSERT_TRUE(worlds.ok());
  bool is_world = median->empty();
  for (const World& w : *worlds) is_world |= (w.leaf_ids == *median);
  EXPECT_TRUE(is_world);

  // Rebuild the paper's candidate family (prefixes of blocks sorted by their
  // top alternative's probability) and check none beats the answer.
  std::vector<double> marginal = tree->LeafMarginals();
  const TreeNode& root = tree->node(tree->root());
  std::vector<NodeId> representatives;
  for (NodeId b : root.children) {
    NodeId best_leaf = kInvalidNode;
    double best_p = 0.0;
    for (NodeId c : tree->node(b).children) {
      if (marginal[static_cast<size_t>(c)] > best_p) {
        best_p = marginal[static_cast<size_t>(c)];
        best_leaf = c;
      }
    }
    if (best_leaf != kInvalidNode) representatives.push_back(best_leaf);
  }
  std::sort(representatives.begin(), representatives.end(),
            [&](NodeId a, NodeId b) {
              return marginal[static_cast<size_t>(a)] >
                     marginal[static_cast<size_t>(b)];
            });
  std::vector<NodeId> prefix;
  EXPECT_LE(median_cost, ExpectedJaccardDistance(*tree, {}) + 1e-9);
  for (NodeId r : representatives) {
    prefix.push_back(r);
    std::vector<NodeId> sorted = prefix;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_LE(median_cost, ExpectedJaccardDistance(*tree, sorted) + 1e-9);
  }
  EXPECT_GE(median_cost, -1e-12);
  EXPECT_LE(median_cost, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JaccardProperty, ::testing::Range(0, 10));

TEST(JaccardTest, ShapeDetectors) {
  Rng rng(5);
  auto independent = RandomTupleIndependent(4, &rng);
  ASSERT_TRUE(independent.ok());
  EXPECT_TRUE(IsTupleIndependent(*independent));
  EXPECT_TRUE(IsBlockIndependent(*independent));

  RandomTreeOptions opts;
  opts.num_keys = 4;
  opts.max_alternatives = 3;
  auto bid = RandomBid(opts, &rng);
  ASSERT_TRUE(bid.ok());
  EXPECT_TRUE(IsBlockIndependent(*bid));

  opts.max_depth = 3;
  auto deep = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(deep.ok());
  // Deep correlated trees are generally neither.
  EXPECT_FALSE(IsTupleIndependent(*deep));
}

TEST(JaccardTest, MeanWorldRejectsNonIndependentTrees) {
  Rng rng(7);
  RandomTreeOptions opts;
  opts.num_keys = 4;
  opts.max_alternatives = 3;
  auto bid = RandomBid(opts, &rng);
  ASSERT_TRUE(bid.ok());
  EXPECT_EQ(MeanWorldJaccard(*bid).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(JaccardTest, HighProbabilityTuplesAreKept) {
  std::vector<IndependentTuple> tuples;
  double probs[] = {0.95, 0.9, 0.05};
  for (int i = 0; i < 3; ++i) {
    IndependentTuple t;
    t.alt.key = i;
    t.alt.score = i + 1.0;
    t.prob = probs[i];
    tuples.push_back(t);
  }
  auto tree = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree.ok());
  auto mean = MeanWorldJaccard(*tree);
  ASSERT_TRUE(mean.ok());
  ASSERT_EQ(mean->size(), 2u);
  EXPECT_EQ(tree->node((*mean)[0]).leaf.key, 0);
  EXPECT_EQ(tree->node((*mean)[1]).leaf.key, 1);
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "poly/poly1.h"
#include "poly/poly2.h"
#include "poly/poly_arena.h"
#include "poly/sparse_poly.h"

namespace cpdb {
namespace {

TEST(Poly1Test, ConstructorsAndAccessors) {
  Poly1 zero(4);
  EXPECT_EQ(zero.Degree(), -1);
  EXPECT_EQ(zero.Coeff(0), 0.0);

  Poly1 c = Poly1::Constant(4, 2.5);
  EXPECT_EQ(c.Degree(), 0);
  EXPECT_EQ(c.Coeff(0), 2.5);

  Poly1 m = Poly1::Monomial(4, 3, -1.0);
  EXPECT_EQ(m.Degree(), 3);
  EXPECT_EQ(m.Coeff(3), -1.0);

  Poly1 a = Poly1::Affine(4, 0.4, 0.6);
  EXPECT_EQ(a.Coeff(0), 0.4);
  EXPECT_EQ(a.Coeff(1), 0.6);
}

TEST(Poly1Test, MonomialBeyondTruncationIsZero) {
  Poly1 m = Poly1::Monomial(2, 5, 1.0);
  EXPECT_EQ(m.Degree(), -1);
}

TEST(Poly1Test, OutOfRangeCoeffAccess) {
  Poly1 p = Poly1::Constant(3, 1.0);
  EXPECT_EQ(p.Coeff(-1), 0.0);
  EXPECT_EQ(p.Coeff(4), 0.0);
  p.SetCoeff(9, 1.0);  // silently ignored (truncation semantics)
  EXPECT_EQ(p.Coeff(9), 0.0);
}

TEST(Poly1Test, MultiplicationMatchesHandExpansion) {
  // (0.4 + 0.6x)(0.7 + 0.3x) = 0.28 + 0.54x + 0.18x^2
  Poly1 a = Poly1::Affine(3, 0.4, 0.6);
  Poly1 b = Poly1::Affine(3, 0.7, 0.3);
  Poly1 p = a * b;
  EXPECT_NEAR(p.Coeff(0), 0.28, 1e-12);
  EXPECT_NEAR(p.Coeff(1), 0.54, 1e-12);
  EXPECT_NEAR(p.Coeff(2), 0.18, 1e-12);
  EXPECT_EQ(p.Coeff(3), 0.0);
}

TEST(Poly1Test, MultiplicationTruncates) {
  Poly1 x = Poly1::Monomial(2, 1, 1.0);
  Poly1 p = x * x * x;  // x^3 truncated at degree 2
  EXPECT_EQ(p.Degree(), -1);
}

TEST(Poly1Test, ProbabilityMassConservation) {
  // A product of affine probability factors keeps total mass 1 when no
  // truncation occurs.
  Rng rng(3);
  Poly1 p = Poly1::Constant(16, 1.0);
  for (int i = 0; i < 16; ++i) {
    double q = rng.Uniform01();
    p *= Poly1::Affine(16, 1 - q, q);
  }
  EXPECT_NEAR(p.SumCoeffs(), 1.0, 1e-9);
  EXPECT_NEAR(p.Eval(1.0), 1.0, 1e-9);
}

TEST(Poly1Test, EvalMatchesHorner) {
  Poly1 p(3);
  p.SetCoeff(0, 1.0);
  p.SetCoeff(1, -2.0);
  p.SetCoeff(3, 4.0);
  EXPECT_NEAR(p.Eval(0.5), 1.0 - 1.0 + 4.0 * 0.125, 1e-12);
}

TEST(Poly1Test, AddScaledAndArithmetic) {
  Poly1 a = Poly1::Affine(2, 1.0, 2.0);
  Poly1 b = Poly1::Affine(2, 0.5, 0.5);
  a.AddScaled(b, 2.0);
  EXPECT_NEAR(a.Coeff(0), 2.0, 1e-12);
  EXPECT_NEAR(a.Coeff(1), 3.0, 1e-12);
  Poly1 d = a - b;
  EXPECT_NEAR(d.Coeff(0), 1.5, 1e-12);
  Poly1 s = 2.0 * b;
  EXPECT_NEAR(s.Coeff(1), 1.0, 1e-12);
}

TEST(Poly1Test, ToString) {
  Poly1 p(3);
  EXPECT_EQ(p.ToString(), "0");
  p.SetCoeff(0, 0.5);
  p.SetCoeff(2, 1.5);
  EXPECT_EQ(p.ToString(), "0.5 + 1.5 x^2");
}

TEST(Poly2Test, MonomialAndCoeff) {
  Poly2 m = Poly2::Monomial(3, 2, 1, 2, 4.0);
  EXPECT_EQ(m.Coeff(1, 2), 4.0);
  EXPECT_EQ(m.Coeff(0, 0), 0.0);
  EXPECT_EQ(m.Coeff(4, 0), 0.0);  // out of bounds
}

TEST(Poly2Test, MultiplicationMatchesHandExpansion) {
  // (1 + x)(1 + y) = 1 + x + y + xy
  Poly2 a = Poly2::Constant(2, 2, 1.0) + Poly2::Monomial(2, 2, 1, 0, 1.0);
  Poly2 b = Poly2::Constant(2, 2, 1.0) + Poly2::Monomial(2, 2, 0, 1, 1.0);
  Poly2 p = a * b;
  EXPECT_EQ(p.Coeff(0, 0), 1.0);
  EXPECT_EQ(p.Coeff(1, 0), 1.0);
  EXPECT_EQ(p.Coeff(0, 1), 1.0);
  EXPECT_EQ(p.Coeff(1, 1), 1.0);
  EXPECT_EQ(p.Coeff(2, 0), 0.0);
}

TEST(Poly2Test, TruncationPerVariable) {
  Poly2 x = Poly2::Monomial(1, 1, 1, 0, 1.0);
  Poly2 p = x * x;  // x^2 truncated (max_dx = 1)
  EXPECT_EQ(p.SumCoeffs(), 0.0);
}

TEST(Poly2Test, EvalAndSum) {
  Poly2 p(2, 1);
  p.SetCoeff(0, 0, 0.25);
  p.SetCoeff(2, 1, 0.75);
  EXPECT_NEAR(p.SumCoeffs(), 1.0, 1e-12);
  EXPECT_NEAR(p.Eval(2.0, 3.0), 0.25 + 0.75 * 4.0 * 3.0, 1e-12);
}

TEST(Poly2Test, AddScaled) {
  Poly2 a = Poly2::Constant(1, 1, 1.0);
  Poly2 b = Poly2::Monomial(1, 1, 1, 1, 2.0);
  a.AddScaled(b, 0.5);
  EXPECT_EQ(a.Coeff(1, 1), 1.0);
}

TEST(ConvolveKernelTest, BitwiseMatchesNaiveQuadLoopOnRandomOperands) {
  // The vectorized kernel behind Poly1/Poly2 operator* and the flat fold
  // must be bitwise identical to the textbook truncated-convolution quad
  // loop with per-element zero skips (the historical implementation),
  // including on operands with scattered exact zeros (which exercise the
  // row-granularity skip's ±0.0 argument).
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const int max_dx = static_cast<int>(rng.UniformInt(1, 7));
    const int max_dy = static_cast<int>(rng.UniformInt(0, 3));
    const int stride = max_dy + 1;
    const size_t len = static_cast<size_t>((max_dx + 1) * stride);
    std::vector<double> a(len), b(len);
    for (size_t i = 0; i < len; ++i) {
      a[i] = rng.Bernoulli(1.0 / 3) ? 0.0 : rng.Uniform(-0.5, 0.5);
      b[i] = rng.Bernoulli(1.0 / 3) ? 0.0 : rng.Uniform(-0.5, 0.5);
    }

    std::vector<double> naive(len, 0.0);
    for (int ia = 0; ia <= max_dx; ++ia) {
      for (int ja = 0; ja <= max_dy; ++ja) {
        const double ca = a[static_cast<size_t>(ia * stride + ja)];
        if (ca == 0.0) continue;
        for (int ib = 0; ib + ia <= max_dx; ++ib) {
          for (int jb = 0; jb + ja <= max_dy; ++jb) {
            const double cb = b[static_cast<size_t>(ib * stride + jb)];
            if (cb == 0.0) continue;
            naive[static_cast<size_t>((ia + ib) * stride + (ja + jb))] +=
                ca * cb;
          }
        }
      }
    }

    std::vector<double> got(len, 0.0);
    ConvolveRowsTruncated(a.data(), b.data(), got.data(), max_dx, max_dy);
    for (size_t i = 0; i < len; ++i) {
      ASSERT_EQ(got[i], naive[i]) << "trial " << trial << " index " << i;
    }
  }
}

TEST(PolyArenaTest, ReserveGrowsOnlyAndKeepsGeometry) {
  PolyArena arena;
  arena.Reserve(4, 8);
  EXPECT_EQ(arena.num_slots(), 4);
  EXPECT_EQ(arena.row_len(), 8);
  const size_t big = arena.CapacityBytes();
  EXPECT_GE(big, 4 * 8 * sizeof(double));

  // Rows are distinct, writable storage.
  for (int s = 0; s < 4; ++s) arena.Row(s)[0] = static_cast<double>(s);
  for (int s = 0; s < 4; ++s) EXPECT_EQ(arena.Row(s)[0], s);

  // Shrinking the geometry must not shrink the allocation (steady-state
  // reuse), and growing past the high-water must grow it.
  arena.Reserve(1, 2);
  EXPECT_EQ(arena.num_slots(), 1);
  EXPECT_GE(arena.CapacityBytes(), big);
  arena.Reserve(16, 32);
  EXPECT_GE(arena.CapacityBytes(), 16 * 32 * sizeof(double));
}

TEST(SparsePolyTest, BasicArithmetic) {
  SparsePoly a = SparsePoly::Constant(2, 1.0);
  SparsePoly x = SparsePoly::Monomial(2, {1, 0}, 1.0);
  SparsePoly y = SparsePoly::Monomial(2, {0, 1}, 1.0);
  SparsePoly p = (a + x) * (a + y);
  EXPECT_EQ(p.Coeff({0, 0}), 1.0);
  EXPECT_EQ(p.Coeff({1, 0}), 1.0);
  EXPECT_EQ(p.Coeff({0, 1}), 1.0);
  EXPECT_EQ(p.Coeff({1, 1}), 1.0);
  EXPECT_EQ(p.NumTerms(), 4u);
}

TEST(SparsePolyTest, TotalDegreeTruncation) {
  SparsePoly x = SparsePoly::Monomial(1, {1}, 1.0, /*max_total_degree=*/2);
  SparsePoly p = x * x * x;
  EXPECT_EQ(p.NumTerms(), 0u);
}

TEST(SparsePolyTest, EvalMatchesExpansion) {
  SparsePoly p(2);
  p.AddTerm({1, 2}, 3.0);
  p.AddTerm({0, 0}, 1.0);
  EXPECT_NEAR(p.Eval({2.0, 3.0}), 1.0 + 3.0 * 2.0 * 9.0, 1e-12);
}

TEST(SparsePolyTest, PruneDropsSmallTerms) {
  SparsePoly p(1);
  p.AddTerm({0}, 1.0);
  p.AddTerm({1}, 1e-15);
  p.Prune(1e-12);
  EXPECT_EQ(p.NumTerms(), 1u);
}

TEST(SparsePolyTest, AgreesWithPoly2OnRandomProducts) {
  // SparsePoly is the reference implementation: random products of bivariate
  // affine factors must match Poly2 exactly (up to FP rounding).
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    Poly2 dense = Poly2::Constant(6, 6, 1.0);
    SparsePoly sparse = SparsePoly::Constant(2, 1.0);
    for (int f = 0; f < 6; ++f) {
      double c0 = rng.Uniform01(), cx = rng.Uniform01(), cy = rng.Uniform01();
      Poly2 df = Poly2::Constant(6, 6, c0);
      df.AddScaled(Poly2::Monomial(6, 6, 1, 0, 1.0), cx);
      df.AddScaled(Poly2::Monomial(6, 6, 0, 1, 1.0), cy);
      dense = dense * df;
      SparsePoly sf = SparsePoly::Constant(2, c0);
      sf.AddTerm({1, 0}, cx);
      sf.AddTerm({0, 1}, cy);
      sparse = sparse * sf;
    }
    for (int i = 0; i <= 6; ++i) {
      for (int j = 0; j <= 6; ++j) {
        EXPECT_NEAR(dense.Coeff(i, j),
                    sparse.Coeff({static_cast<uint32_t>(i),
                                  static_cast<uint32_t>(j)}),
                    1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace cpdb

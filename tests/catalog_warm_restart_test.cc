// Copyright 2026 The ConsensusDB Authors
//
// Warm-restart differential tests: a serving process restored from a
// catalog snapshot must be indistinguishable on the wire from one that
// loaded the same trees line-by-line. The load-bearing comparisons are
// byte-level — responses are rendered through the actual protocol
// formatter and compared as strings — across every op (all four Top-k
// metrics, both worlds, stats, error lines), shard counts {1, 2, 4}, and
// both snapshot load paths (streaming read and mmap).
//
// Stats parity splits by snapshot flavor, by design:
//   * trees-only snapshot: full byte parity *including* stats lines — both
//     services start with cold caches;
//   * snapshot with precomputed distributions: all answers byte-identical,
//     and the warm service's first batch hits the rank-distribution cache
//     it was seeded with (zero misses), which is the entire point — the
//     hit/miss counters legitimately differ from a cold start and the test
//     asserts exactly that.
//
// This suite runs in the TSan CI job: the concurrent case exercises
// queries racing InstallSnapshot on a live sharded front-end.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "io/request_protocol.h"
#include "io/table_io.h"
#include "io/tree_text.h"
#include "service/catalog_snapshot.h"
#include "service/query_scheduler.h"
#include "service/sharded_scheduler.h"
#include "service/tree_catalog.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

constexpr char kTreeText[] =
    "(and (xor 0.6 (leaf key=1 score=8) 0.3 (leaf key=1 score=5))"
    " (xor 0.7 (leaf key=2 score=9))"
    " (xor 0.5 (leaf key=3 score=7) 0.5 (leaf key=3 score=6)))";

constexpr char kOtherTreeText[] =
    "(and (xor 0.5 (leaf key=4 score=3)) (xor 0.25 (leaf key=5 score=1)))";

AndXorTree RandomDeepTree(uint64_t seed, int num_keys = 8) {
  Rng rng(seed);
  RandomTreeOptions opts;
  opts.num_keys = num_keys;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  EXPECT_TRUE(tree.ok());
  return *std::move(tree);
}

ServiceRequest TopKRequest(const std::string& tree, int k, TopKMetric metric,
                           TopKAnswer answer = TopKAnswer::kMean) {
  ServiceRequest request;
  request.op = ServiceRequest::Op::kTopK;
  request.tree_name = tree;
  request.k = k;
  request.metric = metric;
  request.answer = answer;
  return request;
}

ServiceRequest WorldRequest(const std::string& tree, bool median = false) {
  ServiceRequest request;
  request.op = ServiceRequest::Op::kWorld;
  request.tree_name = tree;
  request.median_world = median;
  return request;
}

ServiceRequest StatsRequest() {
  ServiceRequest request;
  request.op = ServiceRequest::Op::kStats;
  return request;
}

// The heterogeneous differential workload over `names`: every metric, all
// answer flavors, both worlds, an unknown tree, an unsupported
// (metric, answer) pair, bracketed by stats probes.
std::vector<ServiceRequest> DifferentialBatch(
    const std::vector<std::string>& names) {
  std::vector<ServiceRequest> batch;
  batch.push_back(StatsRequest());
  for (const std::string& name : names) {
    batch.push_back(TopKRequest(name, 3, TopKMetric::kSymDiff));
    batch.push_back(TopKRequest(name, 3, TopKMetric::kIntersection));
    batch.push_back(TopKRequest(name, 2, TopKMetric::kFootrule));
    batch.push_back(TopKRequest(name, 2, TopKMetric::kKendall));
    batch.push_back(TopKRequest(name, 3, TopKMetric::kSymDiff,
                                TopKAnswer::kMedian));
    batch.push_back(TopKRequest(name, 3, TopKMetric::kSymDiff,
                                TopKAnswer::kMeanUnrestricted));
    batch.push_back(TopKRequest(name, 3, TopKMetric::kIntersection,
                                TopKAnswer::kMeanApprox));
    batch.push_back(WorldRequest(name));
    batch.push_back(WorldRequest(name, /*median=*/true));
  }
  batch.push_back(TopKRequest("no_such_tree", 2, TopKMetric::kSymDiff));
  batch.push_back(TopKRequest(names[0], 2, TopKMetric::kFootrule,
                              TopKAnswer::kMedian));  // NotImplemented
  batch.push_back(StatsRequest());
  return batch;
}

// Renders a result vector exactly as the serve command would write it —
// response lines through the protocol formatter, failures as in-band error
// lines — so "identical responses" means identical *bytes on the wire*,
// stats and error text included.
std::vector<std::string> WireLines(
    const std::vector<Result<ServiceResponse>>& results) {
  std::vector<std::string> lines;
  lines.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    lines.push_back(results[i].ok()
                        ? FormatResponseLine(ResponseToFields(*results[i]))
                        : FormatErrorLine(i + 1, results[i].status()));
  }
  return lines;
}

// Wire-level comparison with stats lines included or skipped (skipped for
// the warmed-cache flavor, whose counters differ by design).
void ExpectSameWire(const std::vector<Result<ServiceResponse>>& got,
                    const std::vector<Result<ServiceResponse>>& want,
                    bool compare_stats, const std::string& label) {
  const std::vector<std::string> got_lines = WireLines(got);
  const std::vector<std::string> want_lines = WireLines(want);
  ASSERT_EQ(got_lines.size(), want_lines.size()) << label;
  for (size_t i = 0; i < got_lines.size(); ++i) {
    if (!compare_stats && got[i].ok() &&
        got[i]->op == ServiceRequest::Op::kStats) {
      continue;
    }
    EXPECT_EQ(got_lines[i], want_lines[i])
        << label << " slot " << i;
  }
}

EngineOptions ReferenceEngineOptions(int threads = 2) {
  EngineOptions options;
  options.num_threads = threads;
  options.use_fast_bid_path = false;
  return options;
}

class CatalogWarmRestartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trees_.push_back(*ParseTree(kTreeText));
    trees_.push_back(*ParseTree(kOtherTreeText));
    for (uint64_t seed : {11u, 23u, 47u, 91u, 130u, 177u}) {
      trees_.push_back(RandomDeepTree(seed));
    }
    for (size_t i = 0; i < trees_.size(); ++i) {
      names_.push_back("t" + std::to_string(i));
    }
    snapshot_path_ = ::testing::TempDir() + "/warm_restart.snap";
  }

  // The cold path: feed every tree line-by-line (Insert, the seam op=load
  // ends in) into whichever back end is given.
  void SeedCold(TreeCatalog* catalog, ShardedScheduler* sharded) const {
    for (size_t i = 0; i < trees_.size(); ++i) {
      if (catalog != nullptr) {
        ASSERT_TRUE(catalog->Insert(names_[i], trees_[i]).ok());
      }
      if (sharded != nullptr) {
        ASSERT_TRUE(sharded->Insert(names_[i], trees_[i]).ok());
      }
    }
  }

  // Saves a trees-only snapshot (cold caches) of the full tree set.
  void SaveTreesOnlySnapshot() const {
    TreeCatalog catalog;
    SeedCold(&catalog, nullptr);
    ASSERT_TRUE(WriteCatalogSnapshotFile(
                    snapshot_path_, BuildCatalogSnapshot(catalog, nullptr))
                    .ok());
  }

  // Loads the snapshot through the selected path, as serve --catalog does.
  Result<CatalogSnapshot> LoadSnapshot(bool mmap) const {
    return mmap ? MmapCatalogSnapshotFile(snapshot_path_)
                : ReadCatalogSnapshotFile(snapshot_path_);
  }

  std::vector<AndXorTree> trees_;
  std::vector<std::string> names_;
  std::string snapshot_path_;
};

// ---------------------------------------------------------------------------
// Single scheduler: warm vs cold, full byte parity (stats included)
// ---------------------------------------------------------------------------

// A trees-only snapshot restores a service whose *entire wire transcript* —
// answers, error lines, and stats lines — is byte-identical to a cold
// service fed the same trees line-by-line, on both load paths, batch and
// streaming, cold and re-run warm.
TEST_F(CatalogWarmRestartTest, TreesOnlySnapshotIsByteIdenticalToColdStart) {
  SaveTreesOnlySnapshot();
  const std::vector<ServiceRequest> batch = DifferentialBatch(names_);

  Engine cold_engine(ReferenceEngineOptions());
  TreeCatalog cold_catalog;
  QueryScheduler cold(&cold_engine, &cold_catalog);
  SeedCold(&cold_catalog, nullptr);
  auto want_first = cold.ExecuteBatch(batch);
  auto want_second = cold.ExecuteBatch(batch);

  for (bool mmap : {false, true}) {
    const std::string label = mmap ? "mmap" : "read";
    Result<CatalogSnapshot> snapshot = LoadSnapshot(mmap);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    Engine warm_engine(ReferenceEngineOptions());
    TreeCatalog warm_catalog;
    QueryScheduler warm(&warm_engine, &warm_catalog);
    ASSERT_TRUE(
        InstallCatalogSnapshot(*snapshot, &warm_catalog, &warm).ok());
    EXPECT_EQ(warm_catalog.size(), trees_.size());
    // No distribution sections => the restored cache is exactly as cold as
    // a fresh one, so even hit/miss counters must match byte-for-byte.
    ExpectSameWire(warm.ExecuteBatch(batch), want_first,
                   /*compare_stats=*/true, label + " first batch");
    ExpectSameWire(warm.ExecuteBatch(batch), want_second,
                   /*compare_stats=*/true, label + " second batch");
  }
}

TEST_F(CatalogWarmRestartTest, StreamingTranscriptMatchesColdStart) {
  SaveTreesOnlySnapshot();
  const std::vector<ServiceRequest> requests = DifferentialBatch(names_);
  auto stream_through = [&requests](QueryScheduler* scheduler) {
    std::vector<Result<ServiceResponse>> responses;
    size_t cursor = 0;
    scheduler->ExecuteStreaming(
        [&](ServiceRequest* out) {
          if (cursor == requests.size()) return false;
          *out = requests[cursor++];
          return true;
        },
        [&](const Result<ServiceResponse>& response) {
          responses.push_back(response);
        });
    return responses;
  };

  Engine cold_engine(ReferenceEngineOptions());
  TreeCatalog cold_catalog;
  QueryScheduler cold(&cold_engine, &cold_catalog);
  SeedCold(&cold_catalog, nullptr);
  auto want = stream_through(&cold);

  for (bool mmap : {false, true}) {
    Result<CatalogSnapshot> snapshot = LoadSnapshot(mmap);
    ASSERT_TRUE(snapshot.ok());
    Engine warm_engine(ReferenceEngineOptions());
    TreeCatalog warm_catalog;
    QueryScheduler warm(&warm_engine, &warm_catalog);
    ASSERT_TRUE(
        InstallCatalogSnapshot(*snapshot, &warm_catalog, &warm).ok());
    ExpectSameWire(stream_through(&warm), want, /*compare_stats=*/true,
                   mmap ? "streaming mmap" : "streaming read");
  }
}

// ---------------------------------------------------------------------------
// Sharded: warm vs cold across shard counts, both load paths
// ---------------------------------------------------------------------------

TEST_F(CatalogWarmRestartTest, ShardedWarmStartMatchesColdAcrossShardCounts) {
  SaveTreesOnlySnapshot();
  const std::vector<ServiceRequest> batch = DifferentialBatch(names_);

  // The single-engine cold service anchors answer parity across every
  // configuration. Its stats lines are excluded from that comparison —
  // sharded stats carry the per-shard breakdown fields by design — so the
  // stats bytes are pinned by the like-for-like comparison below instead.
  Engine reference_engine(ReferenceEngineOptions());
  TreeCatalog reference_catalog;
  QueryScheduler reference(&reference_engine, &reference_catalog);
  SeedCold(&reference_catalog, nullptr);
  auto want_first = reference.ExecuteBatch(batch);
  auto want_second = reference.ExecuteBatch(batch);

  for (int shards : {1, 2, 4}) {
    // Like-for-like cold service: same shard count, trees fed line-by-line.
    // Against this reference the warm transcript must be byte-identical in
    // full, per-shard stats fields included.
    ShardedScheduler cold(shards, ReferenceEngineOptions());
    SeedCold(nullptr, &cold);
    auto cold_first = cold.ExecuteBatch(batch);
    auto cold_second = cold.ExecuteBatch(batch);
    ExpectSameWire(cold_first, want_first, /*compare_stats=*/false,
                   "cold shards=" + std::to_string(shards));

    for (bool mmap : {false, true}) {
      const std::string label = "shards=" + std::to_string(shards) +
                                (mmap ? " mmap" : " read");
      Result<CatalogSnapshot> snapshot = LoadSnapshot(mmap);
      ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
      ShardedScheduler warm(shards, ReferenceEngineOptions());
      ASSERT_TRUE(warm.InstallSnapshot(*snapshot).ok());
      ExpectSameWire(warm.ExecuteBatch(batch), cold_first,
                     /*compare_stats=*/true, label + " first");
      ExpectSameWire(warm.ExecuteBatch(batch), cold_second,
                     /*compare_stats=*/true, label + " second");
    }
  }
}

// A snapshot saved from a sharded service equals the snapshot saved from
// the single-engine service, byte for byte, for every shard count — the
// file is a pure function of the logical serving state.
TEST_F(CatalogWarmRestartTest, SavedBytesAreIndependentOfShardCount) {
  const std::vector<ServiceRequest> batch = DifferentialBatch(names_);

  Engine single_engine(ReferenceEngineOptions());
  TreeCatalog single_catalog;
  QueryScheduler single(&single_engine, &single_catalog);
  SeedCold(&single_catalog, nullptr);
  for (const auto& result : single.ExecuteBatch(batch)) {
    (void)result;  // warm the caches; per-slot failures are part of the mix
  }
  const std::string want_bytes = EncodeCatalogSnapshot(
      BuildCatalogSnapshot(single_catalog, &single));

  for (int shards : {1, 2, 4}) {
    ShardedScheduler sharded(shards, ReferenceEngineOptions());
    SeedCold(nullptr, &sharded);
    sharded.ExecuteBatch(batch);
    EXPECT_EQ(EncodeCatalogSnapshot(
                  sharded.BuildSnapshot(/*include_distributions=*/true)),
              want_bytes)
        << "shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// Precomputed distributions: warm answers, warm counters
// ---------------------------------------------------------------------------

// A snapshot with distribution sections restores a service whose answers
// are byte-identical to cold AND whose first batch never misses the
// rank-distribution cache — the restart is warm where it matters.
TEST_F(CatalogWarmRestartTest, PrecomputedDistributionsMakeFirstBatchWarm) {
  const std::vector<ServiceRequest> batch = DifferentialBatch(names_);

  // Cold run, twice: the second pass is what a warmed cache should mimic.
  Engine cold_engine(ReferenceEngineOptions());
  TreeCatalog cold_catalog;
  QueryScheduler cold(&cold_engine, &cold_catalog);
  SeedCold(&cold_catalog, nullptr);
  auto want_cold = cold.ExecuteBatch(batch);
  ASSERT_TRUE(WriteCatalogSnapshotFile(
                  snapshot_path_, BuildCatalogSnapshot(cold_catalog, &cold))
                  .ok());
  const CacheStats after_cold = cold.cache_stats();
  ASSERT_GT(after_cold.misses, 0);

  for (int shards : {0, 1, 2, 4}) {  // 0 = the single-engine scheduler
    for (bool mmap : {false, true}) {
      const std::string label = "shards=" + std::to_string(shards) +
                                (mmap ? " mmap" : " read");
      Result<CatalogSnapshot> snapshot = LoadSnapshot(mmap);
      ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
      ASSERT_EQ(snapshot->distributions.size(),
                static_cast<size_t>(after_cold.entries));

      std::vector<Result<ServiceResponse>> got;
      CacheStats warm_stats;
      if (shards == 0) {
        Engine warm_engine(ReferenceEngineOptions());
        TreeCatalog warm_catalog;
        QueryScheduler warm(&warm_engine, &warm_catalog);
        ASSERT_TRUE(
            InstallCatalogSnapshot(*snapshot, &warm_catalog, &warm).ok());
        // Seeding provisions the cache without pretending to be traffic:
        // entries and bytes are charged, counters stay zero.
        EXPECT_EQ(warm.cache_stats().entries, after_cold.entries);
        EXPECT_EQ(warm.cache_stats().bytes, after_cold.bytes);
        EXPECT_EQ(warm.cache_stats().hits, 0);
        EXPECT_EQ(warm.cache_stats().misses, 0);
        got = warm.ExecuteBatch(batch);
        warm_stats = warm.cache_stats();
      } else {
        ShardedScheduler warm(shards, ReferenceEngineOptions());
        ASSERT_TRUE(warm.InstallSnapshot(*snapshot).ok());
        EXPECT_EQ(warm.cache_stats().entries, after_cold.entries);
        EXPECT_EQ(warm.cache_stats().bytes, after_cold.bytes);
        got = warm.ExecuteBatch(batch);
        warm_stats = warm.cache_stats();
      }

      // Answers (and error lines) byte-identical; stats lines excluded —
      // their difference is the feature under test, asserted directly:
      ExpectSameWire(got, want_cold, /*compare_stats=*/false, label);
      // ...the warm service's first batch re-folded nothing.
      EXPECT_EQ(warm_stats.misses, 0) << label;
      EXPECT_GT(warm_stats.hits, 0) << label;
      EXPECT_EQ(warm_stats.entries, after_cold.entries) << label;
      EXPECT_EQ(warm_stats.bytes, after_cold.bytes) << label;
    }
  }
}

// Seeding respects the byte budget like any other cache write: a budget too
// small to hold a distribution refuses it (and answers stay correct, just
// cold), and a zero budget retains nothing.
TEST_F(CatalogWarmRestartTest, SeedingRespectsTheCacheBudget) {
  const std::vector<ServiceRequest> batch = DifferentialBatch(names_);
  Engine cold_engine(ReferenceEngineOptions());
  TreeCatalog cold_catalog;
  QueryScheduler cold(&cold_engine, &cold_catalog);
  SeedCold(&cold_catalog, nullptr);
  auto want = cold.ExecuteBatch(batch);
  ASSERT_TRUE(WriteCatalogSnapshotFile(
                  snapshot_path_, BuildCatalogSnapshot(cold_catalog, &cold))
                  .ok());

  Result<CatalogSnapshot> snapshot = LoadSnapshot(false);
  ASSERT_TRUE(snapshot.ok());
  for (int64_t budget : {int64_t{0}, int64_t{700}}) {
    SchedulerOptions options;
    options.cache_budget_bytes = budget;
    Engine engine(ReferenceEngineOptions());
    TreeCatalog catalog;
    QueryScheduler warm(&engine, &catalog, options);
    ASSERT_TRUE(InstallCatalogSnapshot(*snapshot, &catalog, &warm).ok());
    EXPECT_LE(warm.cache_stats().bytes, budget);
    ExpectSameWire(warm.ExecuteBatch(batch), want, /*compare_stats=*/false,
                   "budget=" + std::to_string(budget));
  }
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan target): queries racing the snapshot install
// ---------------------------------------------------------------------------

// Queries hammer a sharded front-end while InstallSnapshot populates it.
// Every response must be either the catalog's NotFound (tree not installed
// yet) or the bitwise-correct answer — never a torn or wrong one. TSan
// watches the directory mutex, shard catalogs, and cache seeding.
TEST_F(CatalogWarmRestartTest, QueriesDuringInstallSeeNotFoundOrExactAnswer) {
  // Snapshot with distributions, so the install also races cache seeding.
  Engine cold_engine(ReferenceEngineOptions());
  TreeCatalog cold_catalog;
  QueryScheduler cold(&cold_engine, &cold_catalog);
  SeedCold(&cold_catalog, nullptr);
  const std::vector<ServiceRequest> probe = {
      TopKRequest(names_[0], 3, TopKMetric::kSymDiff),
      TopKRequest(names_[3], 2, TopKMetric::kKendall),
      WorldRequest(names_[5]),
  };
  auto want = cold.ExecuteBatch(probe);
  for (const auto& slot : want) ASSERT_TRUE(slot.ok());
  const std::vector<std::string> want_lines = WireLines(want);
  ASSERT_TRUE(WriteCatalogSnapshotFile(
                  snapshot_path_, BuildCatalogSnapshot(cold_catalog, &cold))
                  .ok());
  Result<CatalogSnapshot> snapshot = LoadSnapshot(true);
  ASSERT_TRUE(snapshot.ok());

  ShardedScheduler warm(3, ReferenceEngineOptions());
  std::thread installer(
      [&] { ASSERT_TRUE(warm.InstallSnapshot(*snapshot).ok()); });
  constexpr int kThreads = 3;
  constexpr int kRounds = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        auto got = warm.ExecuteBatch(probe);
        const std::vector<std::string> got_lines = WireLines(got);
        for (size_t i = 0; i < got.size(); ++i) {
          if (got[i].ok()) {
            EXPECT_EQ(got_lines[i], want_lines[i]) << "slot " << i;
          } else {
            EXPECT_EQ(got[i].status().code(), StatusCode::kNotFound)
                << got[i].status().ToString();
          }
        }
      }
    });
  }
  installer.join();
  for (std::thread& w : workers) w.join();

  // After the install settles, the service is fully warm and exact.
  ExpectSameWire(warm.ExecuteBatch(probe), want, /*compare_stats=*/false,
                 "post-install");
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// The prior Top-k semantics (Sections 1-2) and their relationships to the
// consensus answers, notably Theorem 3's identity: Global Top-k = mean
// answer under symmetric difference.

#include "core/ranking_baselines.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/topk_symdiff.h"
#include "model/builders.h"
#include "model/possible_worlds.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

class BaselinesProperty : public ::testing::TestWithParam<int> {};

TEST_P(BaselinesProperty, ExpectedRanksMatchEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 193 + 3);
  RandomTreeOptions opts;
  opts.num_keys = 5;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  auto worlds = EnumerateWorlds(*tree);
  ASSERT_TRUE(worlds.ok());

  std::vector<KeyId> keys = tree->Keys();
  std::vector<double> computed = ExpectedRanks(*tree);
  for (size_t ki = 0; ki < keys.size(); ++ki) {
    double expected = 0.0;
    for (const World& w : *worlds) {
      std::vector<TupleAlternative> tuples = WorldTuples(*tree, w.leaf_ids);
      int rank = -1;
      for (size_t pos = 0; pos < tuples.size(); ++pos) {
        if (tuples[pos].key == keys[ki]) rank = static_cast<int>(pos) + 1;
      }
      expected += w.prob * (rank > 0 ? rank
                                     : static_cast<double>(tuples.size()) + 1.0);
    }
    EXPECT_NEAR(computed[ki], expected, 1e-9) << "key " << keys[ki];
  }
}

TEST_P(BaselinesProperty, GlobalTopKEqualsMeanSymDiffAnswer) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 197 + 7);
  RandomTreeOptions opts;
  opts.num_keys = 8;
  opts.max_alternatives = 3;
  auto tree = RandomBid(opts, &rng);
  ASSERT_TRUE(tree.ok());
  const int k = 3;
  RankDistribution dist = ComputeRankDistribution(*tree, k);
  std::vector<KeyId> global = GlobalTopK(dist);
  TopKResult mean = MeanTopKSymDiff(dist);
  // Same key set (order may differ only on ties, and our generators are
  // tie-free with probability 1).
  std::set<KeyId> a(global.begin(), global.end());
  std::set<KeyId> b(mean.keys.begin(), mean.keys.end());
  EXPECT_EQ(a, b);
}

TEST_P(BaselinesProperty, UTopKSampledConvergesToExact) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 211 + 13);
  RandomTreeOptions opts;
  opts.num_keys = 4;
  opts.max_alternatives = 2;
  auto tree = RandomBid(opts, &rng);
  ASSERT_TRUE(tree.ok());
  const int k = 2;
  auto exact = UTopKExact(*tree, k);
  ASSERT_TRUE(exact.ok());
  std::vector<KeyId> sampled = UTopKSampled(*tree, k, 60000, &rng);
  EXPECT_EQ(*exact, sampled)
      << "sampled U-Top-k disagrees with exact on a small instance";
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselinesProperty, ::testing::Range(0, 8));

TEST(BaselinesTest, ExpectedScoreRanksCertainTuplesByScore) {
  std::vector<IndependentTuple> tuples;
  for (int i = 0; i < 5; ++i) {
    IndependentTuple t;
    t.alt.key = i;
    t.alt.score = 10.0 + i;  // key 4 has the best score
    t.prob = 1.0;
    tuples.push_back(t);
  }
  auto tree = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree.ok());
  std::vector<KeyId> top = TopKByExpectedScore(*tree, 2);
  std::vector<KeyId> want = {4, 3};
  EXPECT_EQ(top, want);
  std::vector<KeyId> by_rank = TopKByExpectedRank(*tree, 2);
  EXPECT_EQ(by_rank, want);
}

TEST(BaselinesTest, ExpectedScoreTradesScoreAgainstProbability) {
  // Key 0: huge score, tiny probability. Key 1: modest score, certain.
  std::vector<IndependentTuple> tuples(2);
  tuples[0].alt.key = 0;
  tuples[0].alt.score = 100.0;
  tuples[0].prob = 0.01;
  tuples[1].alt.key = 1;
  tuples[1].alt.score = 10.0;
  tuples[1].prob = 1.0;
  auto tree = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree.ok());
  std::vector<KeyId> top = TopKByExpectedScore(*tree, 1);
  EXPECT_EQ(top[0], 1);  // 10 > 1 expected
}

TEST(BaselinesTest, PTkThresholdControlsAnswerSize) {
  Rng rng(31);
  RandomTreeOptions opts;
  opts.num_keys = 10;
  auto tree = RandomBid(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, 3);
  std::vector<KeyId> all = ProbabilisticThresholdTopK(dist, 0.0);
  std::vector<KeyId> none = ProbabilisticThresholdTopK(dist, 1.01);
  EXPECT_EQ(all.size(), dist.keys().size());
  EXPECT_TRUE(none.empty());
  // Monotone: higher thresholds return subsets.
  std::vector<KeyId> mid = ProbabilisticThresholdTopK(dist, 0.5);
  std::vector<KeyId> high = ProbabilisticThresholdTopK(dist, 0.8);
  EXPECT_LE(high.size(), mid.size());
  for (KeyId key : high) {
    EXPECT_NE(std::find(mid.begin(), mid.end(), key), mid.end());
  }
  // Calibrating the threshold to the k-th largest Pr reproduces Global
  // Top-k (the paper's PT-k/consensus connection).
  std::vector<KeyId> global = GlobalTopK(dist);
  double calibrated = dist.PrTopK(global.back());
  std::vector<KeyId> ptk = ProbabilisticThresholdTopK(dist, calibrated);
  std::vector<KeyId> prefix(ptk.begin(), ptk.begin() + global.size());
  EXPECT_EQ(prefix, global);
}

TEST(BaselinesTest, PRFWithHarmonicWeightsMatchesUpsilonHOrdering) {
  Rng rng(37);
  RandomTreeOptions opts;
  opts.num_keys = 8;
  auto tree = RandomBid(opts, &rng);
  ASSERT_TRUE(tree.ok());
  const int k = 4;
  RankDistribution dist = ComputeRankDistribution(*tree, k);
  // w[i-1] = H_k - H_{i-1} turns PRF into Upsilon_H (Section 5.3).
  std::vector<double> weights;
  double hk = 0.0;
  for (int i = 1; i <= k; ++i) hk += 1.0 / i;
  double h_prefix = 0.0;
  for (int i = 1; i <= k; ++i) {
    weights.push_back(hk - h_prefix);
    h_prefix += 1.0 / i;
  }
  std::vector<KeyId> prf = TopKByPRF(dist, weights);

  // Compare with a direct Upsilon_H ordering.
  std::vector<KeyId> keys = dist.keys();
  std::stable_sort(keys.begin(), keys.end(), [&](KeyId a, KeyId b) {
    double ua = 0.0, ub = 0.0;
    for (int i = 1; i <= k; ++i) {
      ua += dist.PrRankLe(a, i) / i;
      ub += dist.PrRankLe(b, i) / i;
    }
    return ua > ub;
  });
  keys.resize(static_cast<size_t>(k));
  EXPECT_EQ(prf, keys);
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// The op-pipeline differential suite. The OpRegistry is the single table
// the protocol parser, both schedulers, the instruments, and the wire
// formatter walk; this file pins the properties that make that table safe
// to extend:
//
//   * table shape — specs()[i].op == Op(i), wire-name lookup round-trips,
//     and the unknown-op error enumerates the table;
//   * strict parses — per-op field allow-lists and value sets reject
//     garbage with pinned messages;
//   * CLI twins — the four analytics ops (marginals, aggregate, baseline,
//     hardness) answer byte-identically to their offline commands for
//     canonical-content trees;
//   * transcript identity — one serve input produces byte-identical
//     response transcripts across shard counts, thread counts, cache
//     settings, budgets, metrics on/off, batch/stream, and warm restarts;
//   * the parallel Engine::ExpectedRanks is bitwise the sequential core
//     fold, and repeated analytics requests fold marginals once.

#include "service/op_registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/ranking_baselines.h"
#include "engine/engine.h"
#include "io/request_protocol.h"
#include "io/table_io.h"
#include "io/tree_text.h"
#include "model/canonical.h"
#include "service/query_scheduler.h"
#include "service/tree_catalog.h"
#include "tools/cli_lib.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

// Runs the CLI capturing stdout/stderr through temp files (the cli_test.cc
// harness, shared idiom).
struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult RunCliArgs(const std::vector<std::string>& args) {
  std::string out_path = ::testing::TempDir() + "/opreg_cli_out.txt";
  std::string err_path = ::testing::TempDir() + "/opreg_cli_err.txt";
  std::FILE* out = std::fopen(out_path.c_str(), "w+");
  std::FILE* err = std::fopen(err_path.c_str(), "w+");
  std::vector<std::string> full = {"cpdb_cli"};
  full.insert(full.end(), args.begin(), args.end());
  int code = RunCli(full, out, err);
  std::fclose(out);
  std::fclose(err);
  return {code, *ReadFileToString(out_path), *ReadFileToString(err_path)};
}

AndXorTree RandomDeepTree(uint64_t seed, int num_keys = 10) {
  Rng rng(seed);
  RandomTreeOptions opts;
  opts.num_keys = num_keys;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  EXPECT_TRUE(tree.ok());
  return *std::move(tree);
}

// The labeled hand-written tree (every alternative labeled, so
// op=aggregate succeeds) and an unlabeled one (so it errors).
constexpr char kLabeledTreeText[] =
    "(and (xor 0.6 (leaf key=1 score=8 label=0)"
    "          0.3 (leaf key=1 score=5 label=1))"
    " (xor 0.7 (leaf key=2 score=9 label=0))"
    " (xor 0.5 (leaf key=3 score=7 label=1)"
    "          0.5 (leaf key=3 score=6 label=0)))";

constexpr char kUnlabeledTreeText[] =
    "(and (xor 0.5 (leaf key=4 score=3)) (xor 0.25 (leaf key=5 score=1)))";

// The value of `name=` in one tab-separated response line, or "" when the
// field is absent. Fields render as "\tname=value".
std::string Field(const std::string& line, const std::string& name) {
  const std::string needle = "\t" + name + "=";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  size_t end = line.find('\t', pos);
  return line.substr(pos, end == std::string::npos ? std::string::npos
                                                   : end - pos);
}

// Replaces every error line's line=N field with line=#. Error *text* is
// part of the byte contract; the input line number legitimately shifts
// when the same queries are fed with and without load-line preambles.
std::string MaskLineNumbers(const std::string& transcript) {
  std::string masked = transcript;
  size_t pos = 0;
  while ((pos = masked.find("\tline=", pos)) != std::string::npos) {
    size_t start = pos + 6;
    size_t end = masked.find('\t', start);
    if (end == std::string::npos) break;
    masked.replace(start, end - start, "#");
    pos = start;
  }
  return masked;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

// The CLI-vs-serve fixture. Input trees are written in their *canonical*
// orientation: the serve caches fold over the canonical orientation (the
// StructKey identity), so only canonical-content inputs make the offline
// command and the serve response answer literally the same fold — the same
// precondition the sharded differential suite documents.
class OpPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trees_ = {*CanonicalizeTree(*ParseTree(kLabeledTreeText)),
              *CanonicalizeTree(RandomDeepTree(101)),
              *CanonicalizeTree(RandomDeepTree(202, 14))};
    names_ = {"lab", "d0", "d1"};
    for (size_t i = 0; i < trees_.size(); ++i) {
      paths_.push_back(::testing::TempDir() + "/opreg_" + names_[i] + ".sexp");
      ASSERT_TRUE(WriteStringToFile(paths_[i], FormatTree(trees_[i])).ok());
    }
    unlabeled_path_ = ::testing::TempDir() + "/opreg_unlabeled.sexp";
    ASSERT_TRUE(WriteStringToFile(
                    unlabeled_path_,
                    FormatTree(*CanonicalizeTree(*ParseTree(kUnlabeledTreeText))))
                    .ok());
  }

  // One line per load, then the analytics/query mix used by every
  // transcript-identity configuration. Includes error rows (unlabeled
  // aggregate, unknown tree, unknown op) because error bytes are part of
  // the wire contract.
  std::string RequestFileWithLoads() {
    std::string text;
    for (size_t i = 0; i < names_.size(); ++i) {
      text += "op=load name=" + names_[i] + " file=" + paths_[i] + "\n";
    }
    text += "op=load name=unlab file=" + unlabeled_path_ + "\n";
    return text + QueryRequests();
  }

  std::string QueryRequests() {
    return
        "op=marginals tree=lab\n"
        "op=marginals tree=d0\n"
        "op=marginals tree=d1\n"
        "op=aggregate tree=lab\n"
        "op=aggregate tree=d0\n"
        "op=aggregate tree=unlab\n"
        "op=baseline tree=d0 k=3 method=escore\n"
        "op=baseline tree=d0 k=3 method=erank\n"
        "op=baseline tree=d1 k=4 method=global\n"
        "op=baseline tree=d1 k=4 method=prf\n"
        "op=baseline tree=lab k=2\n"
        "op=hardness tree=lab\n"
        "op=hardness tree=d0\n"
        "op=hardness tree=d1\n"
        "op=topk tree=d0 k=3\n"
        "op=topk tree=d1 k=3 metric=kendall\n"
        "op=world tree=lab\n"
        "op=marginals tree=no_such_tree\n"
        "op=frobnicate tree=d0\n";
  }

  std::string WriteRequestFile(const std::string& name,
                               const std::string& text) {
    std::string path = ::testing::TempDir() + "/" + name;
    EXPECT_TRUE(WriteStringToFile(path, text).ok());
    return path;
  }

  // Serves `request_path` with the given extra flags and returns stdout.
  // Every configuration must exit 1: the request mix contains in-band
  // error lines by construction.
  std::string ServeTranscript(const std::string& request_path,
                              const std::vector<std::string>& flags) {
    std::vector<std::string> args = {"serve", request_path};
    args.insert(args.end(), flags.begin(), flags.end());
    CliResult r = RunCliArgs(args);
    EXPECT_EQ(r.code, 1) << "flags " << ::testing::PrintToString(flags)
                         << "\nstderr: " << r.err;
    return r.out;
  }

  std::vector<AndXorTree> trees_;
  std::vector<std::string> names_;
  std::vector<std::string> paths_;
  std::string unlabeled_path_;
};

// ---------------------------------------------------------------------------
// Table shape
// ---------------------------------------------------------------------------

TEST(OpRegistryTest, TableIndexIsTheOpEnumAndNamesRoundTrip) {
  const OpRegistry& registry = OpRegistry::Get();
  ASSERT_EQ(registry.specs().size(), 9u);
  for (size_t i = 0; i < registry.specs().size(); ++i) {
    const OpSpec& spec = registry.specs()[i];
    // The enum is the table index — what lets the instruments and both
    // schedulers index per-op state by op without a name lookup.
    EXPECT_EQ(static_cast<size_t>(spec.op), i);
    EXPECT_EQ(&registry.spec(spec.op), &spec);
    EXPECT_EQ(registry.FindByName(spec.name), &spec) << spec.name;
  }
  EXPECT_EQ(registry.FindByName("frobnicate"), nullptr);
  // Every spec is fully wired: a parse, a formatter, and exactly one
  // execute hook matching its routing class.
  for (const OpSpec& spec : registry.specs()) {
    EXPECT_NE(spec.parse, nullptr) << spec.name;
    EXPECT_NE(spec.format, nullptr) << spec.name;
    if (spec.routing == OpRouting::kAdmin) {
      EXPECT_NE(spec.execute_admin, nullptr) << spec.name;
      EXPECT_EQ(spec.execute_tree, nullptr) << spec.name;
    } else if (spec.routing == OpRouting::kTreeAddressed) {
      EXPECT_NE(spec.execute_tree, nullptr) << spec.name;
      EXPECT_EQ(spec.execute_admin, nullptr) << spec.name;
    }
  }
}

TEST(OpRegistryTest, UnknownOpErrorEnumeratesTheTable) {
  // The satellite regression: the valid-op list in the error is *derived*
  // from the registry, so a newly added op appears here without anyone
  // editing an error string. The full text is golden-pinned in
  // request_protocol_test.cc as well.
  Status error = OpRegistry::Get().UnknownOpError("frobnicate");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.message(),
            "unknown op 'frobnicate' (expected load, topk, world, stats, "
            "metrics, marginals, aggregate, baseline or hardness)");
  EXPECT_EQ(OpRegistry::Get().ExpectedOpsList(),
            "load, topk, world, stats, metrics, marginals, aggregate, "
            "baseline or hardness");
}

// ---------------------------------------------------------------------------
// Strict parses for the new ops
// ---------------------------------------------------------------------------

Result<ServiceRequest> ParseLine(const std::string& text) {
  CPDB_ASSIGN_OR_RETURN(RequestLine line, ParseRequestLine(text));
  return ServiceRequestFromLine(line);
}

TEST(OpRegistryParseTest, NewOpsParseTheirFields) {
  auto marginals = ParseLine("op=marginals tree=t");
  ASSERT_TRUE(marginals.ok());
  EXPECT_EQ(marginals->op, ServiceRequest::Op::kMarginals);
  EXPECT_EQ(marginals->tree_name, "t");

  auto baseline = ParseLine("op=baseline tree=t k=7 method=prf");
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->op, ServiceRequest::Op::kBaseline);
  EXPECT_EQ(baseline->k, 7);
  EXPECT_EQ(baseline->baseline_method, "prf");
  // method defaults to escore, same default as the CLI twin's --method.
  auto defaulted = ParseLine("op=baseline tree=t k=2");
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(defaulted->baseline_method, "escore");

  auto hardness = ParseLine("op=hardness tree=t trace=on");
  ASSERT_TRUE(hardness.ok());
  EXPECT_EQ(hardness->op, ServiceRequest::Op::kHardness);
  EXPECT_TRUE(hardness->trace);
}

TEST(OpRegistryParseTest, NewOpsRejectGarbageStrictly) {
  // Field allow-lists: k belongs to topk/baseline, not marginals.
  EXPECT_FALSE(ParseLine("op=marginals tree=t k=3").ok());
  EXPECT_FALSE(ParseLine("op=aggregate tree=t metric=symdiff").ok());
  EXPECT_FALSE(ParseLine("op=hardness tree=t answer=mean").ok());
  // Required fields stay required.
  EXPECT_FALSE(ParseLine("op=marginals").ok());
  EXPECT_FALSE(ParseLine("op=baseline tree=t").ok());
  // Value sets: the method enum is strict, and its message enumerates the
  // valid set like every other strict parse in the protocol.
  auto bad_method = ParseLine("op=baseline tree=t k=2 method=bogus");
  ASSERT_FALSE(bad_method.ok());
  EXPECT_EQ(bad_method.status().message(),
            "unknown method 'bogus' (expected escore, erank, global or prf)");
  EXPECT_FALSE(ParseLine("op=baseline tree=t k=0 method=escore").ok());
}

// ---------------------------------------------------------------------------
// CLI twins: the serve bytes are the offline bytes
// ---------------------------------------------------------------------------

TEST_F(OpPipelineTest, MarginalsOpMatchesOfflineCommandByteForByte) {
  std::string requests;
  for (size_t i = 0; i < names_.size(); ++i) {
    requests += "op=load name=" + names_[i] + " file=" + paths_[i] + "\n";
  }
  for (const std::string& name : names_) {
    requests += "op=marginals tree=" + name + "\n";
  }
  std::string path = WriteRequestFile("opreg_marg.txt", requests);
  CliResult serve = RunCliArgs({"serve", path});
  ASSERT_EQ(serve.code, 0) << serve.err;
  std::vector<std::string> lines = SplitLines(serve.out);
  ASSERT_EQ(lines.size(), 6u);
  for (size_t i = 0; i < names_.size(); ++i) {
    SCOPED_TRACE(names_[i]);
    const std::string& line = lines[3 + i];
    // Rebuild the serve csvs from the offline command's rows: same keys,
    // same round-trip-formatted marginal bytes, same order.
    CliResult cli = RunCliArgs({"marginals", paths_[i]});
    ASSERT_EQ(cli.code, 0);
    std::vector<std::string> rows = SplitLines(cli.out);
    ASSERT_GE(rows.size(), 2u);
    EXPECT_EQ(rows[0], "key presence_probability");
    std::string keys_csv, marginals_csv;
    for (size_t r = 1; r < rows.size(); ++r) {
      size_t space = rows[r].find(' ');
      ASSERT_NE(space, std::string::npos) << rows[r];
      if (r > 1) {
        keys_csv += ",";
        marginals_csv += ",";
      }
      keys_csv += rows[r].substr(0, space);
      marginals_csv += rows[r].substr(space + 1);
    }
    EXPECT_EQ(Field(line, "keys"), keys_csv);
    EXPECT_EQ(Field(line, "marginals"), marginals_csv);
  }
}

TEST_F(OpPipelineTest, AggregateOpMatchesOfflineCommandByteForByte) {
  std::string requests = "op=load name=lab file=" + paths_[0] +
                         "\nop=load name=d0 file=" + paths_[1] +
                         "\nop=aggregate tree=lab\nop=aggregate tree=d0\n";
  std::string path = WriteRequestFile("opreg_agg.txt", requests);
  CliResult serve = RunCliArgs({"serve", path});
  ASSERT_EQ(serve.code, 0) << serve.err;
  std::vector<std::string> lines = SplitLines(serve.out);
  ASSERT_EQ(lines.size(), 4u);
  for (size_t i = 0; i < 2; ++i) {
    SCOPED_TRACE(names_[i]);
    const std::string& line = lines[2 + i];
    CliResult cli = RunCliArgs({"aggregate", paths_[i]});
    ASSERT_EQ(cli.code, 0) << cli.err;
    std::vector<std::string> rows = SplitLines(cli.out);
    ASSERT_GE(rows.size(), 2u);
    EXPECT_EQ(rows[0], "group mean_count median_count");
    std::string mean_csv, median_csv;
    for (size_t r = 1; r < rows.size(); ++r) {
      size_t s1 = rows[r].find(' ');
      size_t s2 = rows[r].find(' ', s1 + 1);
      ASSERT_NE(s2, std::string::npos) << rows[r];
      if (r > 1) {
        mean_csv += ",";
        median_csv += ",";
      }
      mean_csv += rows[r].substr(s1 + 1, s2 - s1 - 1);
      median_csv += rows[r].substr(s2 + 1);
    }
    EXPECT_EQ(Field(line, "groups"), std::to_string(rows.size() - 1));
    EXPECT_EQ(Field(line, "mean"), mean_csv);
    EXPECT_EQ(Field(line, "median"), median_csv);
  }
}

TEST_F(OpPipelineTest, AggregateErrorTextIsSharedWithTheOfflineCommand) {
  // Both surfaces route the group-by build through
  // core/aggregates.h GroupByInstanceFromTree, so the missing-label
  // message is literally the same bytes.
  CliResult cli = RunCliArgs({"aggregate", unlabeled_path_});
  EXPECT_EQ(cli.code, 1);
  std::string requests = "op=load name=u file=" + unlabeled_path_ +
                         "\nop=aggregate tree=u\n";
  std::string path = WriteRequestFile("opreg_agg_err.txt", requests);
  CliResult serve = RunCliArgs({"serve", path});
  EXPECT_EQ(serve.code, 1);
  std::vector<std::string> lines = SplitLines(serve.out);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(Field(lines[1], "msg"), "Invalid argument: " + cli.err.substr(0, cli.err.size() - 1));
  EXPECT_NE(cli.err.find("aggregate requires a label on every alternative"),
            std::string::npos)
      << cli.err;
}

TEST_F(OpPipelineTest, BaselineOpMatchesOfflineCommandForEveryMethod) {
  const std::vector<std::string> kMethods = {"escore", "erank", "global",
                                             "prf"};
  for (int k : {1, 3}) {
    std::string requests;
    for (size_t i = 0; i < names_.size(); ++i) {
      requests += "op=load name=" + names_[i] + " file=" + paths_[i] + "\n";
    }
    for (const std::string& name : names_) {
      for (const std::string& method : kMethods) {
        requests += "op=baseline tree=" + name + " k=" + std::to_string(k) +
                    " method=" + method + "\n";
      }
    }
    std::string path = WriteRequestFile("opreg_base.txt", requests);
    CliResult serve = RunCliArgs({"serve", path});
    ASSERT_EQ(serve.code, 0) << serve.err;
    std::vector<std::string> lines = SplitLines(serve.out);
    ASSERT_EQ(lines.size(), names_.size() * (1 + kMethods.size()));
    size_t slot = names_.size();
    for (size_t i = 0; i < names_.size(); ++i) {
      for (const std::string& method : kMethods) {
        SCOPED_TRACE(names_[i] + " " + method + " k=" + std::to_string(k));
        const std::string& line = lines[slot++];
        EXPECT_EQ(Field(line, "method"), method);
        CliResult cli = RunCliArgs({"baseline", paths_[i],
                                    "--k=" + std::to_string(k),
                                    "--method=" + method, "--threads=2"});
        ASSERT_EQ(cli.code, 0) << cli.err;
        // The offline line is "baseline <method> k=<k> keys=<csv>"; the
        // keys csv must be the serve response's keys field, byte for byte.
        std::string expected = "baseline " + method +
                               " k=" + std::to_string(k) +
                               " keys=" + Field(line, "keys") + "\n";
        EXPECT_EQ(cli.out, expected);
      }
    }
  }
}

TEST_F(OpPipelineTest, HardnessOpMatchesOfflineCommandByteForByte) {
  std::string requests;
  for (size_t i = 0; i < names_.size(); ++i) {
    requests += "op=load name=" + names_[i] + " file=" + paths_[i] + "\n";
  }
  for (const std::string& name : names_) {
    requests += "op=hardness tree=" + name + "\n";
  }
  std::string path = WriteRequestFile("opreg_hard.txt", requests);
  CliResult serve = RunCliArgs({"serve", path});
  ASSERT_EQ(serve.code, 0) << serve.err;
  std::vector<std::string> lines = SplitLines(serve.out);
  ASSERT_EQ(lines.size(), 6u);
  for (size_t i = 0; i < names_.size(); ++i) {
    SCOPED_TRACE(names_[i]);
    const std::string& line = lines[3 + i];
    CliResult cli = RunCliArgs({"hardness", paths_[i]});
    ASSERT_EQ(cli.code, 0);
    // The offline command prints "name value" lines whose names are the
    // serve response's field names; values must agree byte for byte.
    int compared = 0;
    for (const std::string& row : SplitLines(cli.out)) {
      size_t space = row.find(' ');
      ASSERT_NE(space, std::string::npos) << row;
      EXPECT_EQ(Field(line, row.substr(0, space)), row.substr(space + 1))
          << row;
      ++compared;
    }
    EXPECT_EQ(compared, 7);
  }
}

// ---------------------------------------------------------------------------
// Transcript identity across serving configurations
// ---------------------------------------------------------------------------

TEST_F(OpPipelineTest, TranscriptIsByteIdenticalAcrossConfigurations) {
  std::string path =
      WriteRequestFile("opreg_all.txt", RequestFileWithLoads());
  const std::string baseline = ServeTranscript(path, {});
  ASSERT_FALSE(baseline.empty());
  // Answers — and error lines — are bitwise independent of parallelism,
  // sharding, caching, budgets, instruments, and batching. Each variant
  // flips one or two knobs; the transcript must not move by a byte.
  const std::vector<std::vector<std::string>> kVariants = {
      {"--stream"},
      {"--threads=8"},
      {"--stream", "--threads=8"},
      {"--cache=off"},
      {"--cache-budget=0"},
      {"--metrics=off"},
      {"--shards=1"},
      {"--shards=2", "--threads=8"},
      {"--shards=4"},
      {"--shards=4", "--stream", "--cache-budget=4096"},
  };
  for (const auto& flags : kVariants) {
    EXPECT_EQ(ServeTranscript(path, flags), baseline)
        << "flags " << ::testing::PrintToString(flags);
  }
}

TEST_F(OpPipelineTest, WarmRestartServesTheSameAnalyticsBytes) {
  // Session one: loads + queries, catalog saved at shutdown. Session two:
  // the snapshot plus the query tail only — every analytics answer must
  // be the bytes session one produced.
  std::string snapshot = ::testing::TempDir() + "/opreg_catalog.snap";
  std::string full_path =
      WriteRequestFile("opreg_warm_full.txt", RequestFileWithLoads());
  std::string cold =
      ServeTranscript(full_path, {"--save-catalog=" + snapshot});
  std::vector<std::string> cold_lines = SplitLines(cold);
  ASSERT_GT(cold_lines.size(), 4u);
  // Drop the four op=load echo lines; the rest is the query transcript.
  std::string query_transcript;
  for (size_t i = 4; i < cold_lines.size(); ++i) {
    query_transcript += cold_lines[i] + "\n";
  }
  std::string query_path =
      WriteRequestFile("opreg_warm_queries.txt", QueryRequests());
  EXPECT_EQ(MaskLineNumbers(ServeTranscript(query_path,
                                            {"--catalog=" + snapshot})),
            MaskLineNumbers(query_transcript));
  EXPECT_EQ(MaskLineNumbers(ServeTranscript(
                query_path, {"--catalog=" + snapshot, "--mmap", "--shards=2"})),
            MaskLineNumbers(query_transcript));
}

// ---------------------------------------------------------------------------
// The parallel expected-rank fold and the marginals cache
// ---------------------------------------------------------------------------

TEST(EngineExpectedRanksTest, BitwiseEqualToTheSequentialCoreFold) {
  std::vector<AndXorTree> trees;
  trees.push_back(*ParseTree(kLabeledTreeText));
  trees.push_back(RandomDeepTree(7));
  trees.push_back(RandomDeepTree(33, 16));
  for (const AndXorTree& tree : trees) {
    const std::vector<double> reference = ExpectedRanks(tree);
    for (int threads : {1, 2, 8}) {
      EngineOptions options;
      options.num_threads = threads;
      Engine engine(options);
      // EXPECT_EQ, never NEAR: op=baseline method=erank must not drift
      // from the offline twin by a ULP on any thread count.
      EXPECT_EQ(engine.ExpectedRanks(tree), reference)
          << threads << " threads";
    }
  }
}

TEST(OpPipelineCacheTest, RepeatedAnalyticsFoldMarginalsOnce) {
  Engine engine;
  TreeCatalog catalog;
  QueryScheduler scheduler(&engine, &catalog);
  ASSERT_TRUE(
      catalog.Insert("lab", *CanonicalizeTree(*ParseTree(kLabeledTreeText)))
          .ok());
  ServiceRequest marginals;
  marginals.op = ServiceRequest::Op::kMarginals;
  marginals.tree_name = "lab";
  ServiceRequest aggregate;
  aggregate.op = ServiceRequest::Op::kAggregate;
  aggregate.tree_name = "lab";
  std::vector<Result<ServiceResponse>> responses =
      scheduler.ExecuteBatch({marginals, marginals, aggregate});
  for (const auto& response : responses) ASSERT_TRUE(response.ok());
  // One leaf-marginal fold serves all three requests: the second
  // marginals probe and the aggregate's group-by both hit the cache.
  EXPECT_EQ(scheduler.marginals_stats().misses, 1);
  EXPECT_EQ(scheduler.marginals_stats().hits, 2);
  // And the repeated probes answered identically.
  EXPECT_EQ(FormatResponseLine(ResponseToFields(*responses[0])),
            FormatResponseLine(ResponseToFields(*responses[1])));
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Monte-Carlo estimators: unbiasedness against exact enumeration, CI
// behavior, and the adaptive stopping rule.

#include "core/monte_carlo.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/set_consensus.h"
#include "core/topk_symdiff.h"
#include "model/possible_worlds.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

class MonteCarloProperty : public ::testing::TestWithParam<int> {};

TEST_P(MonteCarloProperty, TopKEstimateCoversExactValue) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 811 + 7);
  RandomTreeOptions opts;
  opts.num_keys = 6;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  const int k = 3;

  std::vector<KeyId> answer = tree->Keys();
  if (answer.size() > static_cast<size_t>(k)) answer.resize(static_cast<size_t>(k));

  for (TopKMetric metric :
       {TopKMetric::kSymDiff, TopKMetric::kIntersection, TopKMetric::kFootrule,
        TopKMetric::kKendall}) {
    auto exact = EnumExpectedTopKDistance(*tree, answer, k, metric);
    ASSERT_TRUE(exact.ok());
    McEstimate estimate =
        McExpectedTopKDistance(*tree, answer, k, metric, 20000, &rng);
    EXPECT_EQ(estimate.samples, 20000);
    // Degenerate (zero-variance) estimates must equal the exact value.
    if (estimate.std_error == 0.0) {
      EXPECT_NEAR(estimate.mean, *exact, 1e-9);
    } else {
      EXPECT_TRUE(estimate.Covers(*exact, 4.0))
          << "metric " << static_cast<int>(metric) << ": exact " << *exact
          << " vs " << estimate.mean << " +- " << estimate.std_error;
    }
  }
}

TEST_P(MonteCarloProperty, SetEstimateCoversExactValue) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 839 + 11);
  RandomTreeOptions opts;
  opts.num_keys = 5;
  opts.max_depth = 3;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  std::vector<NodeId> world = MeanWorldSymDiff(*tree);

  for (SetMetric metric : {SetMetric::kSymDiff, SetMetric::kJaccard}) {
    auto exact = EnumExpectedSetDistance(*tree, world, metric);
    ASSERT_TRUE(exact.ok());
    McEstimate estimate =
        McExpectedSetDistance(*tree, world, metric, 20000, &rng);
    if (estimate.std_error == 0.0) {
      EXPECT_NEAR(estimate.mean, *exact, 1e-9);
    } else {
      EXPECT_TRUE(estimate.Covers(*exact, 4.0));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonteCarloProperty, ::testing::Range(0, 8));

TEST(MonteCarloTest, DeterministicInstanceHasZeroError) {
  std::vector<IndependentTuple> tuples(3);
  for (int i = 0; i < 3; ++i) {
    tuples[static_cast<size_t>(i)].alt.key = i;
    tuples[static_cast<size_t>(i)].alt.score = i + 1.0;
    tuples[static_cast<size_t>(i)].prob = 1.0;
  }
  auto tree = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree.ok());
  Rng rng(3);
  std::vector<KeyId> answer = {2, 1};
  McEstimate estimate = McExpectedTopKDistance(*tree, answer, 2,
                                               TopKMetric::kSymDiff, 500, &rng);
  EXPECT_EQ(estimate.std_error, 0.0);
  EXPECT_NEAR(estimate.mean, 0.0, 1e-12);
}

TEST(MonteCarloTest, AdaptiveStopsEarlyOnLowVariance) {
  Rng rng(5);
  auto tree = RandomTupleIndependent(10, &rng);
  ASSERT_TRUE(tree.ok());
  McEstimate loose = EstimateOverWorldsAdaptive(
      *tree, /*target_std_error=*/0.5, /*max_samples=*/100000, &rng,
      [](const std::vector<NodeId>& w) { return static_cast<double>(w.size()); });
  McEstimate tight = EstimateOverWorldsAdaptive(
      *tree, /*target_std_error=*/0.001, /*max_samples=*/100000, &rng,
      [](const std::vector<NodeId>& w) { return static_cast<double>(w.size()); });
  EXPECT_LT(loose.samples, tight.samples);
  EXPECT_LE(loose.std_error, 0.5 + 1e-9);
}

TEST(MonteCarloTest, CiBoundsAreOrdered) {
  Rng rng(7);
  auto tree = RandomTupleIndependent(6, &rng);
  ASSERT_TRUE(tree.ok());
  McEstimate estimate = EstimateOverWorlds(
      *tree, 1000, &rng,
      [](const std::vector<NodeId>& w) { return static_cast<double>(w.size()); });
  EXPECT_LE(estimate.ci95_low(), estimate.mean);
  EXPECT_GE(estimate.ci95_high(), estimate.mean);
  EXPECT_GT(estimate.std_error, 0.0);
}

}  // namespace
}  // namespace cpdb

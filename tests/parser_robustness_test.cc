// Copyright 2026 The ConsensusDB Authors
//
// Failure-injection tests for the text parsers: randomized mutations of
// valid inputs must never crash, and must either parse to a valid tree or
// fail with a clean ParseError / InvalidArgument status.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "io/table_io.h"
#include "io/tree_text.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

class ParserFuzzProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzProperty, MutatedTreesNeverCrash) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 5417 + 101);
  RandomTreeOptions opts;
  opts.num_keys = 5;
  opts.max_depth = 3;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  std::string base = FormatTree(*tree, GetParam() % 2 == 0);

  static const char kNoise[] = "()(). 01xXleafandorkey=score=-e+ \t\n";
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:  // replace
          mutated[pos] = kNoise[rng.UniformInt(0, sizeof(kNoise) - 2)];
          break;
        case 1:  // delete
          mutated.erase(pos, 1);
          break;
        default:  // insert
          mutated.insert(pos, 1, kNoise[rng.UniformInt(0, sizeof(kNoise) - 2)]);
          break;
      }
    }
    auto result = ParseTree(mutated);
    if (result.ok()) {
      // Whatever parsed must be internally consistent.
      EXPECT_GE(result->NumLeaves(), 1);
    } else {
      StatusCode code = result.status().code();
      EXPECT_TRUE(code == StatusCode::kParseError ||
                  code == StatusCode::kInvalidArgument)
          << result.status().ToString();
    }
  }
}

TEST_P(ParserFuzzProperty, MutatedBidTablesNeverCrash) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7333 + 11);
  RandomTreeOptions opts;
  opts.num_keys = 6;
  std::string base = FormatBidTable(RandomBidBlocks(opts, &rng));

  static const char kNoise[] = "0123456789.- #\n\te";
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = base;
    for (int e = 0; e < 3 && !mutated.empty(); ++e) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = kNoise[rng.UniformInt(0, sizeof(kNoise) - 2)];
    }
    auto result = ParseBidTable(mutated);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError)
          << result.status().ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzProperty, ::testing::Range(0, 6));

TEST(ParserRobustnessTest, ModeratelyNestedInputParses) {
  std::string text;
  const int depth = 1500;
  for (int i = 0; i < depth; ++i) text += "(xor 1.0 ";
  text += "(leaf key=1 score=1)";
  for (int i = 0; i < depth; ++i) text += ")";
  auto result = ParseTree(text);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumLeaves(), 1);
}

TEST(ParserRobustnessTest, AdversarialNestingFailsCleanly) {
  // Beyond the documented limit the parser must return ParseError instead of
  // exhausting the call stack (this crashed before the depth guard existed).
  std::string text;
  const int depth = 50000;
  for (int i = 0; i < depth; ++i) text += "(and ";
  text += "(leaf key=1 score=1)";
  for (int i = 0; i < depth; ++i) text += ")";
  auto result = ParseTree(text);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("depth"), std::string::npos);
}

TEST(ParserRobustnessTest, HugeNumbersAndWeirdWhitespace) {
  auto t1 = ParseTree("(leaf\tkey=1\n   score=1e308)");
  ASSERT_TRUE(t1.ok());
  auto t2 = ParseTree("(xor 1e-300 (leaf key=1 score=2))");
  EXPECT_TRUE(t2.ok());
  auto t3 = ParseTree("(xor 1e300 (leaf key=1 score=2))");
  EXPECT_FALSE(t3.ok());  // probability constraint
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Canonicalization property tests and the canonical serving differential
// suite. The properties pin the identity model's contract: every tree in a
// commutative-permutation orbit canonicalizes to one orientation (one
// StructKey), any semantic perturbation leaves the orbit (a new key),
// canonicalization is idempotent, and consensus answers do not depend on
// the orientation served. The differential half pins the serving claim:
// for canonical inputs the refactor is invisible on the wire — transcripts
// are byte-identical across shard counts, thread counts, cache budgets,
// and warm restarts — while permuted duplicates collapse to one shape, one
// fold compile, and shared cache lines.
//
// This suite runs in the ASan and TSan CI jobs (the sharded differential
// cases exercise concurrent shard execution).

#include "model/canonical.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "io/request_protocol.h"
#include "io/tree_text.h"
#include "model/and_xor_tree.h"
#include "service/catalog_snapshot.h"
#include "service/query_scheduler.h"
#include "service/sharded_scheduler.h"
#include "service/tree_catalog.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

// A 3-ary AND over mixed-size XORs: enough asymmetry that random child
// shuffles almost surely change the printed orientation.
constexpr char kBaseTreeText[] =
    "(and (xor 0.6 (leaf key=1 score=8) 0.3 (leaf key=1 score=5))"
    " (xor 0.7 (leaf key=2 score=9))"
    " (xor 0.5 (leaf key=3 score=7) 0.5 (leaf key=3 score=6)))";

AndXorTree Tree(const std::string& text) {
  auto tree = ParseTree(text);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return *std::move(tree);
}

AndXorTree RandomTree(uint64_t seed, int num_keys = 8) {
  Rng rng(seed);
  RandomTreeOptions opts;
  opts.num_keys = num_keys;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  EXPECT_TRUE(tree.ok());
  return *std::move(tree);
}

std::string CanonText(const AndXorTree& tree) {
  auto canonical = CanonicalizeTree(tree);
  EXPECT_TRUE(canonical.ok()) << canonical.status().ToString();
  return FormatTree(*canonical, /*indent=*/false);
}

StructKey KeyOf(const AndXorTree& tree) {
  return StructKey(Fnv1a64(CanonText(tree)));
}

// Rebuilds `id`'s subtree with every inner node's children (and, for XOR,
// the matching edge probabilities) in a random order — a uniformly drawn
// member of the commutative-permutation orbit.
NodeId RebuildShuffled(const AndXorTree& in, NodeId id, Rng* rng,
                       AndXorTree* out) {
  const TreeNode& n = in.node(id);
  if (n.kind == NodeKind::kLeaf) return out->AddLeaf(n.leaf);
  std::vector<size_t> order(n.children.size());
  std::iota(order.begin(), order.end(), 0u);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng->Next() % i]);
  }
  std::vector<NodeId> children;
  std::vector<double> probs;
  children.reserve(order.size());
  for (size_t idx : order) {
    children.push_back(RebuildShuffled(in, n.children[idx], rng, out));
    if (n.kind == NodeKind::kXor) probs.push_back(n.edge_probs[idx]);
  }
  return n.kind == NodeKind::kAnd
             ? out->AddAnd(std::move(children))
             : out->AddXor(std::move(children), std::move(probs));
}

AndXorTree ShuffleCommutative(const AndXorTree& tree, Rng* rng) {
  AndXorTree out;
  out.SetRoot(RebuildShuffled(tree, tree.root(), rng, &out));
  EXPECT_TRUE(out.Validate().ok());
  return out;
}

// ---------------------------------------------------------------------------
// Properties of the canonical orientation
// ---------------------------------------------------------------------------

TEST(CanonicalPropertyTest, PermutationOrbitCollapsesToOneKey) {
  for (uint64_t seed : {1u, 7u, 19u, 42u, 101u, 555u}) {
    const AndXorTree base = RandomTree(seed);
    const std::string canon = CanonText(base);
    const StructKey key(Fnv1a64(canon));
    Rng rng(seed * 1009 + 1);
    int shuffles_that_moved = 0;
    for (int i = 0; i < 8; ++i) {
      const AndXorTree shuffled = ShuffleCommutative(base, &rng);
      if (FormatTree(shuffled, /*indent=*/false) !=
          FormatTree(base, /*indent=*/false)) {
        ++shuffles_that_moved;
      }
      // Whatever the draw did to the printed orientation, the canonical
      // orientation — and with it the structural key — is unchanged.
      EXPECT_EQ(CanonText(shuffled), canon) << "seed " << seed;
      EXPECT_EQ(KeyOf(shuffled), key) << "seed " << seed;
    }
    // The orbit genuinely has more than one member: the shuffle is not a
    // no-op test on degenerate trees.
    EXPECT_GT(shuffles_that_moved, 0) << "seed " << seed;
  }
}

TEST(CanonicalPropertyTest, SemanticPerturbationsChangeTheKey) {
  const StructKey base = KeyOf(Tree(kBaseTreeText));
  // Each variant changes exactly one semantic datum of the base tree:
  // an XOR edge probability, a leaf score, a leaf key, a label, an extra
  // alternative, or the AND arity.
  const char* kPerturbed[] = {
      // prob 0.6 -> 0.61
      "(and (xor 0.61 (leaf key=1 score=8) 0.3 (leaf key=1 score=5))"
      " (xor 0.7 (leaf key=2 score=9))"
      " (xor 0.5 (leaf key=3 score=7) 0.5 (leaf key=3 score=6)))",
      // score 9 -> 10
      "(and (xor 0.6 (leaf key=1 score=8) 0.3 (leaf key=1 score=5))"
      " (xor 0.7 (leaf key=2 score=10))"
      " (xor 0.5 (leaf key=3 score=7) 0.5 (leaf key=3 score=6)))",
      // key 2 -> 4
      "(and (xor 0.6 (leaf key=1 score=8) 0.3 (leaf key=1 score=5))"
      " (xor 0.7 (leaf key=4 score=9))"
      " (xor 0.5 (leaf key=3 score=7) 0.5 (leaf key=3 score=6)))",
      // label added on one leaf
      "(and (xor 0.6 (leaf key=1 score=8 label=1) 0.3 (leaf key=1 score=5))"
      " (xor 0.7 (leaf key=2 score=9))"
      " (xor 0.5 (leaf key=3 score=7) 0.5 (leaf key=3 score=6)))",
      // extra alternative for key 2
      "(and (xor 0.6 (leaf key=1 score=8) 0.3 (leaf key=1 score=5))"
      " (xor 0.7 (leaf key=2 score=9) 0.1 (leaf key=2 score=4))"
      " (xor 0.5 (leaf key=3 score=7) 0.5 (leaf key=3 score=6)))",
      // one XOR child dropped
      "(and (xor 0.6 (leaf key=1 score=8) 0.3 (leaf key=1 score=5))"
      " (xor 0.5 (leaf key=3 score=7) 0.5 (leaf key=3 score=6)))",
  };
  std::set<uint64_t> keys = {base.value()};
  for (const char* text : kPerturbed) {
    const StructKey perturbed = KeyOf(Tree(text));
    EXPECT_NE(perturbed, base) << text;
    keys.insert(perturbed.value());
  }
  // And the perturbations are mutually distinct identities, not one
  // catch-all "different" bucket.
  EXPECT_EQ(keys.size(), 1 + std::size(kPerturbed));
}

TEST(CanonicalPropertyTest, CanonicalizationIsIdempotent) {
  for (uint64_t seed : {3u, 13u, 77u, 200u}) {
    const AndXorTree base = RandomTree(seed);
    auto once = CanonicalizeTree(base);
    ASSERT_TRUE(once.ok());
    auto twice = CanonicalizeTree(*once);
    ASSERT_TRUE(twice.ok());
    const std::string text = FormatTree(*once, /*indent=*/false);
    EXPECT_EQ(FormatTree(*twice, /*indent=*/false), text);
    // The canonical orientation survives a print/parse round trip exactly —
    // the property the snapshot format and the catalog's shared-shape
    // storage both lean on.
    EXPECT_EQ(FormatTree(Tree(text), /*indent=*/false), text);
  }
}

TEST(CanonicalPropertyTest, ConsensusAnswersAreOrientationIndependent) {
  EngineOptions options;
  options.num_threads = 2;
  options.use_fast_bid_path = false;
  Engine engine(options);
  for (uint64_t seed : {5u, 23u}) {
    const AndXorTree base = RandomTree(seed, /*num_keys=*/6);
    auto canonical = CanonicalizeTree(base);
    ASSERT_TRUE(canonical.ok());
    Rng rng(seed + 99);
    const AndXorTree shuffled = ShuffleCommutative(base, &rng);
    for (TopKMetric metric : {TopKMetric::kSymDiff, TopKMetric::kFootrule}) {
      auto a = engine.ConsensusTopK(*canonical, 3, metric, TopKAnswer::kMean);
      auto b = engine.ConsensusTopK(shuffled, 3, metric, TopKAnswer::kMean);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      // Orientation may reorder floating-point accumulation, so the
      // guarantee across orbit members is semantic (same answer, distances
      // agreeing to tolerance), while *within* one orientation the system's
      // guarantee is bitwise.
      EXPECT_EQ(a->keys, b->keys) << "seed " << seed;
      EXPECT_NEAR(a->expected_distance, b->expected_distance, 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// Canonical serving differential suite
// ---------------------------------------------------------------------------

ServiceRequest TopKRequest(const std::string& tree, int k, TopKMetric metric,
                           TopKAnswer answer = TopKAnswer::kMean) {
  ServiceRequest request;
  request.op = ServiceRequest::Op::kTopK;
  request.tree_name = tree;
  request.k = k;
  request.metric = metric;
  request.answer = answer;
  return request;
}

ServiceRequest WorldRequest(const std::string& tree, bool median = false) {
  ServiceRequest request;
  request.op = ServiceRequest::Op::kWorld;
  request.tree_name = tree;
  request.median_world = median;
  return request;
}

// The differential workload over `names`: every metric, mean and median
// answers, both worlds, and an error slot.
std::vector<ServiceRequest> QueryBatch(const std::vector<std::string>& names) {
  std::vector<ServiceRequest> batch;
  for (const std::string& name : names) {
    batch.push_back(TopKRequest(name, 3, TopKMetric::kSymDiff));
    batch.push_back(TopKRequest(name, 3, TopKMetric::kIntersection));
    batch.push_back(TopKRequest(name, 2, TopKMetric::kFootrule));
    batch.push_back(TopKRequest(name, 2, TopKMetric::kKendall));
    batch.push_back(
        TopKRequest(name, 3, TopKMetric::kSymDiff, TopKAnswer::kMedian));
    batch.push_back(WorldRequest(name));
    batch.push_back(WorldRequest(name, /*median=*/true));
  }
  batch.push_back(TopKRequest("no_such_tree", 2, TopKMetric::kSymDiff));
  return batch;
}

// Renders results exactly as the serve command writes them, so "identical"
// below means identical bytes on the wire, error lines included.
std::vector<std::string> WireLines(
    const std::vector<Result<ServiceResponse>>& results) {
  std::vector<std::string> lines;
  lines.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    lines.push_back(results[i].ok()
                        ? FormatResponseLine(ResponseToFields(*results[i]))
                        : FormatErrorLine(i + 1, results[i].status()));
  }
  return lines;
}

EngineOptions ReferenceEngineOptions(int threads) {
  EngineOptions options;
  options.num_threads = threads;
  options.use_fast_bid_path = false;
  return options;
}

class CanonicalServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Canonical inputs: the differential contract below is byte-level, so
    // the fixture serves each tree in its canonical orientation (for
    // non-canonical inputs the serving layer's fold runs over the canonical
    // orientation by design, which is a semantic — not bitwise — match to
    // folding the input orientation).
    for (uint64_t seed : {11u, 23u, 47u, 91u}) {
      trees_.push_back(*CanonicalizeTree(RandomTree(seed)));
      names_.push_back("t" + std::to_string(names_.size()));
    }
  }

  std::vector<std::string> ReferenceWire() const {
    Engine engine(ReferenceEngineOptions(2));
    TreeCatalog catalog;
    QueryScheduler scheduler(&engine, &catalog);
    for (size_t i = 0; i < trees_.size(); ++i) {
      EXPECT_TRUE(catalog.Insert(names_[i], trees_[i]).ok());
    }
    return WireLines(scheduler.ExecuteBatch(QueryBatch(names_)));
  }

  std::vector<AndXorTree> trees_;
  std::vector<std::string> names_;
};

// The tentpole acceptance sweep: one reference transcript, replayed across
// shard counts, thread counts, and cache budgets — byte-identical each way.
TEST_F(CanonicalServingTest, TranscriptsAreByteIdenticalAcrossTopologies) {
  const std::vector<std::string> want = ReferenceWire();
  for (int shards : {1, 2, 4}) {
    for (int threads : {1, 8}) {
      for (int64_t budget : {int64_t{-1}, int64_t{1}}) {
        SchedulerOptions scheduler_options;
        if (budget >= 0) scheduler_options.cache_budget_bytes = budget;
        ShardedScheduler sharded(shards, ReferenceEngineOptions(threads),
                                 scheduler_options);
        for (size_t i = 0; i < trees_.size(); ++i) {
          ASSERT_TRUE(sharded.Insert(names_[i], trees_[i]).ok());
        }
        const std::vector<std::string> got =
            WireLines(sharded.ExecuteBatch(QueryBatch(names_)));
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i], want[i])
              << "shards=" << shards << " threads=" << threads
              << " budget=" << budget << " slot " << i;
        }
      }
    }
  }
}

// Warm restart: snapshot the reference catalog, install it into a fresh
// sharded service, and replay — still byte-identical.
TEST_F(CanonicalServingTest, WarmRestartTranscriptIsByteIdentical) {
  const std::vector<std::string> want = ReferenceWire();

  Engine engine(ReferenceEngineOptions(2));
  TreeCatalog catalog;
  QueryScheduler scheduler(&engine, &catalog);
  for (size_t i = 0; i < trees_.size(); ++i) {
    ASSERT_TRUE(catalog.Insert(names_[i], trees_[i]).ok());
  }
  const std::string bytes =
      EncodeCatalogSnapshot(BuildCatalogSnapshot(catalog, nullptr));
  auto snapshot = DecodeCatalogSnapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  for (int shards : {1, 4}) {
    ShardedScheduler sharded(shards, ReferenceEngineOptions(2));
    ASSERT_TRUE(sharded.InstallSnapshot(*snapshot).ok());
    const std::vector<std::string> got =
        WireLines(sharded.ExecuteBatch(QueryBatch(names_)));
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "shards=" << shards << " slot " << i;
    }
  }
}

// The dedup story end to end: N permuted duplicates of one tree inserted
// under distinct names cost one shape, one fold compile, and after the
// first query every duplicate's query is a shared cache hit — and all
// duplicates' answers are byte-identical on the wire.
TEST_F(CanonicalServingTest, PermutedDuplicatesShareShapeCompileAndCache) {
  const AndXorTree base = RandomTree(321, /*num_keys=*/6);
  Engine engine(ReferenceEngineOptions(2));
  TreeCatalog catalog;
  QueryScheduler scheduler(&engine, &catalog);

  Rng rng(7);
  std::vector<std::string> names;
  std::set<std::string> distinct_texts;
  for (int i = 0; i < 4; ++i) {
    AndXorTree permuted = ShuffleCommutative(base, &rng);
    distinct_texts.insert(FormatTree(permuted, /*indent=*/false));
    names.push_back("dup" + std::to_string(i));
    ASSERT_TRUE(catalog.Insert(names.back(), std::move(permuted)).ok());
  }
  // The orbit draw produced at least two distinct wire identities (else the
  // dedup below is vacuous).
  ASSERT_GT(distinct_texts.size(), 1u);

  const CatalogCounts counts = catalog.Counts();
  EXPECT_EQ(counts.names, 4);
  EXPECT_EQ(counts.contents, static_cast<int>(distinct_texts.size()));
  EXPECT_EQ(counts.shapes, 1);
  EXPECT_EQ(catalog.fold_compiles(), 1);

  std::vector<ServiceRequest> batch;
  for (const std::string& name : names) {
    batch.push_back(TopKRequest(name, 3, TopKMetric::kSymDiff));
  }
  std::vector<std::string> lines = WireLines(scheduler.ExecuteBatch(batch));
  ASSERT_EQ(lines.size(), names.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    // The response echoes the request's name (the one per-duplicate field
    // by design); normalize it so the comparison covers the answer bytes.
    const std::string field = "\ttree=" + names[i];
    const size_t at = lines[i].find(field);
    ASSERT_NE(at, std::string::npos) << lines[i];
    lines[i].replace(at, field.size(), "\ttree=*");
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i], lines[0]) << "duplicate " << i;
  }

  // One (shape, k) line computed once, shared by every duplicate.
  const CacheStats stats = scheduler.cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.entries, 1);
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// The enumeration-based ground-truth evaluators themselves, on hand-computed
// instances (everything else in the suite trusts these as oracles, so they
// get direct tests here).

#include "core/evaluation.h"

#include <gtest/gtest.h>

#include "model/builders.h"

namespace cpdb {
namespace {

// Two independent tuples: key 0 (score 2, p=0.5), key 1 (score 1, p=0.5).
Result<AndXorTree> TwoTupleTree() {
  std::vector<IndependentTuple> tuples(2);
  tuples[0].alt.key = 0;
  tuples[0].alt.score = 2.0;
  tuples[0].alt.label = 0;
  tuples[0].prob = 0.5;
  tuples[1].alt.key = 1;
  tuples[1].alt.score = 1.0;
  tuples[1].alt.label = 1;
  tuples[1].prob = 0.5;
  return MakeTupleIndependent(tuples);
}

TEST(EvaluationTest, TopKSymDiffHandComputed) {
  auto tree = TwoTupleTree();
  ASSERT_TRUE(tree.ok());
  // Worlds: {} 0.25, {0} 0.25, {1} 0.25, {0,1} 0.25. k=1, answer = [0].
  // d = (1/2)|{0} Δ top1(pw)|: {}: |{0}|=1 -> 0.5 ; {0}: 0 ; {1}: |{0,1}|=2
  // -> 1 ; {0,1}: top1 = {0} -> 0. E = 0.25(0.5 + 0 + 1 + 0) = 0.375.
  auto e = EnumExpectedTopKDistance(*tree, {0}, 1, TopKMetric::kSymDiff);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(*e, 0.375, 1e-12);
}

TEST(EvaluationTest, TopKFootruleHandComputed) {
  auto tree = TwoTupleTree();
  ASSERT_TRUE(tree.ok());
  // k=1, answer = [0], location parameter 2.
  // {}: only key 0 in the union: |1-2| = 1. {0}: 0.
  // {1}: keys 0 and 1: |1-2| + |2-1| = 2. {0,1}: top1 = [0]: 0.
  auto e = EnumExpectedTopKDistance(*tree, {0}, 1, TopKMetric::kFootrule);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(*e, 0.25 * (1 + 0 + 2 + 0), 1e-12);
}

TEST(EvaluationTest, SetDistancesHandComputed) {
  auto tree = TwoTupleTree();
  ASSERT_TRUE(tree.ok());
  NodeId leaf0 = tree->LeafIds()[0];
  // Candidate world = {leaf0}.
  // SymDiff: {}: 1, {0}: 0, {1}: 2, {0,1}: 1 -> E = 0.25 * 4 = 1.0.
  auto sym = EnumExpectedSetDistance(*tree, {leaf0}, SetMetric::kSymDiff);
  ASSERT_TRUE(sym.ok());
  EXPECT_NEAR(*sym, 1.0, 1e-12);
  // Jaccard: {}: 1, {0}: 0, {1}: 1, {0,1}: 1/2 -> E = 0.625.
  auto jac = EnumExpectedSetDistance(*tree, {leaf0}, SetMetric::kJaccard);
  ASSERT_TRUE(jac.ok());
  EXPECT_NEAR(*jac, 0.625, 1e-12);
}

TEST(EvaluationTest, ClusteringDistanceCountsPairFlips) {
  ClusteringAnswer a{{0, 0, 1, 1}};
  ClusteringAnswer b{{0, 1, 1, 1}};
  // Pairs: (0,1): together in a, apart in b -> 1. (0,2),(0,3): apart/apart.
  // (1,2),(1,3): apart in a, together in b -> 2. (2,3): together both.
  EXPECT_DOUBLE_EQ(ClusteringDistance(a, b), 3.0);
  EXPECT_DOUBLE_EQ(ClusteringDistance(a, a), 0.0);
  // Cluster ids are labels, not values: any relabeling is the same answer.
  ClusteringAnswer c{{7, 7, 2, 2}};
  EXPECT_DOUBLE_EQ(ClusteringDistance(a, c), 0.0);
}

TEST(EvaluationTest, ClusteringExpectationHandComputed) {
  auto tree = TwoTupleTree();
  ASSERT_TRUE(tree.ok());
  // Labels 0 and 1 differ, so present keys are never co-clustered; both
  // absent keys land in the artificial shared cluster.
  // Answer "together": distance 1 unless both absent (prob .25) -> E = .75.
  ClusteringAnswer together{{5, 5}};
  auto e1 = EnumExpectedClusteringDistance(*tree, together);
  ASSERT_TRUE(e1.ok());
  EXPECT_NEAR(*e1, 0.75, 1e-12);
  // Answer "apart": distance 1 only when both absent -> E = .25.
  ClusteringAnswer apart{{0, 1}};
  auto e2 = EnumExpectedClusteringDistance(*tree, apart);
  ASSERT_TRUE(e2.ok());
  EXPECT_NEAR(*e2, 0.25, 1e-12);
}

TEST(EvaluationTest, PropagatesEnumerationLimit) {
  std::vector<IndependentTuple> tuples(30);
  for (int i = 0; i < 30; ++i) {
    tuples[static_cast<size_t>(i)].alt.key = i;
    tuples[static_cast<size_t>(i)].alt.score = i;
    tuples[static_cast<size_t>(i)].prob = 0.5;
  }
  auto tree = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(EnumExpectedTopKDistance(*tree, {0}, 1, TopKMetric::kSymDiff,
                                     /*max_worlds=*/100)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace cpdb

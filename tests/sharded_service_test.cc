// Copyright 2026 The ConsensusDB Authors
//
// Tests for the sharded serving front-end. The load-bearing property is the
// differential one: a ShardedScheduler's answers must be bitwise identical
// to a single-engine QueryScheduler's for every op, metric, shard count,
// cache budget, and execution mode — partitioning by content fingerprint
// must be observable only in throughput and in the kStats per-shard
// breakdown. Also covered: deterministic routing, name-directory semantics
// (cross-shard rebind conflicts, idempotent re-loads), stats aggregation,
// the streaming interleaving contract, and concurrent ExecuteBatch calls
// (this suite runs in the TSan CI job).

#include "service/sharded_scheduler.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "io/request_protocol.h"
#include "io/table_io.h"
#include "io/tree_text.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

constexpr char kTreeText[] =
    "(and (xor 0.6 (leaf key=1 score=8) 0.3 (leaf key=1 score=5))"
    " (xor 0.7 (leaf key=2 score=9))"
    " (xor 0.5 (leaf key=3 score=7) 0.5 (leaf key=3 score=6)))";

constexpr char kOtherTreeText[] =
    "(and (xor 0.5 (leaf key=4 score=3)) (xor 0.25 (leaf key=5 score=1)))";

AndXorTree RandomDeepTree(uint64_t seed, int num_keys = 8) {
  Rng rng(seed);
  RandomTreeOptions opts;
  opts.num_keys = num_keys;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  EXPECT_TRUE(tree.ok());
  return *std::move(tree);
}

ServiceRequest TopKRequest(const std::string& tree, int k, TopKMetric metric,
                           TopKAnswer answer = TopKAnswer::kMean) {
  ServiceRequest request;
  request.op = ServiceRequest::Op::kTopK;
  request.tree_name = tree;
  request.k = k;
  request.metric = metric;
  request.answer = answer;
  return request;
}

ServiceRequest WorldRequest(const std::string& tree, bool median = false) {
  ServiceRequest request;
  request.op = ServiceRequest::Op::kWorld;
  request.tree_name = tree;
  request.median_world = median;
  return request;
}

ServiceRequest StatsRequest() {
  ServiceRequest request;
  request.op = ServiceRequest::Op::kStats;
  return request;
}

// The heterogeneous differential workload over `names`: every metric,
// mean/median/approx/any-size answers, both world flavors, an unknown tree,
// and an unsupported (metric, answer) pair, bracketed by stats probes.
std::vector<ServiceRequest> DifferentialBatch(
    const std::vector<std::string>& names) {
  std::vector<ServiceRequest> batch;
  batch.push_back(StatsRequest());
  for (const std::string& name : names) {
    batch.push_back(TopKRequest(name, 3, TopKMetric::kSymDiff));
    batch.push_back(TopKRequest(name, 3, TopKMetric::kIntersection));
    batch.push_back(TopKRequest(name, 2, TopKMetric::kFootrule));
    batch.push_back(TopKRequest(name, 2, TopKMetric::kKendall));
    batch.push_back(TopKRequest(name, 3, TopKMetric::kSymDiff,
                                TopKAnswer::kMedian));
    batch.push_back(TopKRequest(name, 3, TopKMetric::kSymDiff,
                                TopKAnswer::kMeanUnrestricted));
    batch.push_back(TopKRequest(name, 3, TopKMetric::kIntersection,
                                TopKAnswer::kMeanApprox));
    batch.push_back(WorldRequest(name));
    batch.push_back(WorldRequest(name, /*median=*/true));
  }
  batch.push_back(TopKRequest("no_such_tree", 2, TopKMetric::kSymDiff));
  batch.push_back(TopKRequest(names[0], 2, TopKMetric::kFootrule,
                              TopKAnswer::kMedian));  // NotImplemented
  batch.push_back(StatsRequest());
  return batch;
}

// Bitwise response comparison. `compare_stats` is off for budgeted runs:
// a finite budget applies to each shard's caches, so eviction-driven
// counters legitimately differ across shard counts while answers never do.
void ExpectSameResponses(const std::vector<Result<ServiceResponse>>& got,
                         const std::vector<Result<ServiceResponse>>& want,
                         bool compare_stats, const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(label + " slot " + std::to_string(i));
    ASSERT_EQ(got[i].ok(), want[i].ok())
        << (got[i].ok() ? want[i].status().ToString()
                        : got[i].status().ToString());
    if (!got[i].ok()) {
      // Error parity is part of the wire contract: same code, same text.
      EXPECT_EQ(got[i].status().code(), want[i].status().code());
      EXPECT_EQ(got[i].status().message(), want[i].status().message());
      continue;
    }
    EXPECT_EQ(got[i]->op, want[i]->op);
    if (got[i]->op == ServiceRequest::Op::kStats) {
      if (compare_stats) {
        EXPECT_EQ(got[i]->stats.hits, want[i]->stats.hits);
        EXPECT_EQ(got[i]->stats.misses, want[i]->stats.misses);
        EXPECT_EQ(got[i]->stats.entries, want[i]->stats.entries);
        EXPECT_EQ(got[i]->stats.bytes, want[i]->stats.bytes);
        EXPECT_EQ(got[i]->stats.evictions, want[i]->stats.evictions);
        EXPECT_EQ(got[i]->marginals_stats.hits, want[i]->marginals_stats.hits);
        EXPECT_EQ(got[i]->marginals_stats.misses,
                  want[i]->marginals_stats.misses);
        EXPECT_EQ(got[i]->marginals_stats.bytes,
                  want[i]->marginals_stats.bytes);
      }
      continue;
    }
    EXPECT_EQ(got[i]->tree_name, want[i]->tree_name);
    EXPECT_EQ(got[i]->fingerprint, want[i]->fingerprint);
    EXPECT_EQ(got[i]->k, want[i]->k);
    EXPECT_EQ(got[i]->metric, want[i]->metric);
    EXPECT_EQ(got[i]->answer, want[i]->answer);
    EXPECT_EQ(got[i]->keys, want[i]->keys);
    // Bitwise: EXPECT_EQ, never NEAR.
    EXPECT_EQ(got[i]->expected_distance, want[i]->expected_distance);
  }
}

EngineOptions ReferenceEngineOptions(int threads = 2) {
  EngineOptions options;
  options.num_threads = threads;
  options.use_fast_bid_path = false;
  return options;
}

class ShardedSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trees_.push_back(*ParseTree(kTreeText));
    trees_.push_back(*ParseTree(kOtherTreeText));
    for (uint64_t seed : {11u, 23u, 47u, 91u, 130u, 177u}) {
      trees_.push_back(RandomDeepTree(seed));
    }
    for (size_t i = 0; i < trees_.size(); ++i) {
      names_.push_back("t" + std::to_string(i));
    }
  }

  // Seeds every tree into `sharded` and the reference catalog alike.
  void Seed(ShardedScheduler* sharded, TreeCatalog* catalog) const {
    for (size_t i = 0; i < trees_.size(); ++i) {
      if (sharded != nullptr) {
        ASSERT_TRUE(sharded->Insert(names_[i], trees_[i]).ok());
      }
      if (catalog != nullptr) {
        ASSERT_TRUE(catalog->Insert(names_[i], trees_[i]).ok());
      }
    }
  }

  std::vector<AndXorTree> trees_;
  std::vector<std::string> names_;
};

// ---------------------------------------------------------------------------
// Routing primitives
// ---------------------------------------------------------------------------

TEST(ShardRoutingTest, ShardOfKeyIsDeterministicAndInRange) {
  Rng rng(5);
  for (int shards : {1, 2, 3, 8, 64}) {
    std::vector<int> population(static_cast<size_t>(shards), 0);
    for (int i = 0; i < 4096; ++i) {
      const StructKey key(rng.Next());
      int shard = ShardedScheduler::ShardOfKey(key, shards);
      ASSERT_GE(shard, 0);
      ASSERT_LT(shard, shards);
      // Pure function of (key, shards).
      EXPECT_EQ(shard, ShardedScheduler::ShardOfKey(key, shards));
      ++population[static_cast<size_t>(shard)];
    }
    // The remix spreads random keys: no shard may be starved.
    for (int count : population) EXPECT_GT(count, 0) << shards << " shards";
  }
}

TEST(ShardRoutingTest, ThreadsPerShardSplitsTheBudget) {
  EXPECT_EQ(ShardedScheduler::ThreadsPerShard(8, 2), 4);
  EXPECT_EQ(ShardedScheduler::ThreadsPerShard(8, 3), 2);
  EXPECT_EQ(ShardedScheduler::ThreadsPerShard(2, 8), 1);  // never below 1
  EXPECT_EQ(ShardedScheduler::ThreadsPerShard(1, 1), 1);
  // total < 1 resolves to the hardware concurrency before splitting.
  EXPECT_GE(ShardedScheduler::ThreadsPerShard(0, 1), 1);
}

// ---------------------------------------------------------------------------
// The differential suite: sharded vs single-engine, bitwise
// ---------------------------------------------------------------------------

// Batch mode, cold and warm, across shard counts, unbounded budget:
// answers AND aggregated stats totals must match the single scheduler
// (every (fingerprint, k) key lives on one shard and sees the same request
// order, so even the hit/miss counters are preserved under the sum).
TEST_F(ShardedSchedulerTest, BatchParityAcrossShardCountsUnbounded) {
  std::vector<ServiceRequest> batch = DifferentialBatch(names_);

  Engine reference_engine(ReferenceEngineOptions());
  TreeCatalog reference_catalog;
  Seed(nullptr, &reference_catalog);
  QueryScheduler reference(&reference_engine, &reference_catalog);
  auto want_cold = reference.ExecuteBatch(batch);
  auto want_warm = reference.ExecuteBatch(batch);

  for (int shards : {1, 2, 4, 8}) {
    ShardedScheduler sharded(shards, ReferenceEngineOptions());
    Seed(&sharded, nullptr);
    auto got_cold = sharded.ExecuteBatch(batch);
    auto got_warm = sharded.ExecuteBatch(batch);
    ExpectSameResponses(got_cold, want_cold, /*compare_stats=*/true,
                        "cold shards=" + std::to_string(shards));
    ExpectSameResponses(got_warm, want_warm, /*compare_stats=*/true,
                        "warm shards=" + std::to_string(shards));
  }
}

// Budgeted caches (including a zero budget that retains nothing): answers
// stay bitwise identical; only counters may differ, since each shard's
// caches evict locally.
TEST_F(ShardedSchedulerTest, BatchParityUnderCacheBudgets) {
  std::vector<ServiceRequest> batch = DifferentialBatch(names_);

  Engine reference_engine(ReferenceEngineOptions());
  TreeCatalog reference_catalog;
  Seed(nullptr, &reference_catalog);
  QueryScheduler reference(&reference_engine, &reference_catalog);
  auto want = reference.ExecuteBatch(batch);
  auto want_warm = reference.ExecuteBatch(batch);

  for (int shards : {1, 4}) {
    for (int64_t budget : {int64_t{0}, int64_t{700}, int64_t{1} << 20}) {
      SchedulerOptions options;
      options.cache_budget_bytes = budget;
      ShardedScheduler sharded(shards, ReferenceEngineOptions(), options);
      Seed(&sharded, nullptr);
      const std::string label = "shards=" + std::to_string(shards) +
                                " budget=" + std::to_string(budget);
      ExpectSameResponses(sharded.ExecuteBatch(batch), want,
                          /*compare_stats=*/false, label + " cold");
      ExpectSameResponses(sharded.ExecuteBatch(batch), want_warm,
                          /*compare_stats=*/false, label + " warm");
      // The budget invariant holds per shard, hence for the sum too.
      if (budget >= 0) {
        for (const ShardCacheStats& shard : sharded.PerShardStats()) {
          EXPECT_LE(shard.rank_dist.bytes, budget) << label;
          EXPECT_LE(shard.marginals.bytes, budget) << label;
        }
      }
    }
  }
}

// The disabled-cache configuration, for completeness of the matrix.
TEST_F(ShardedSchedulerTest, BatchParityWithCacheDisabled) {
  std::vector<ServiceRequest> batch = DifferentialBatch(names_);
  SchedulerOptions no_cache;
  no_cache.use_cache = false;

  Engine reference_engine(ReferenceEngineOptions());
  TreeCatalog reference_catalog;
  Seed(nullptr, &reference_catalog);
  QueryScheduler reference(&reference_engine, &reference_catalog, no_cache);
  auto want = reference.ExecuteBatch(batch);

  for (int shards : {2, 8}) {
    ShardedScheduler sharded(shards, ReferenceEngineOptions(), no_cache);
    Seed(&sharded, nullptr);
    ExpectSameResponses(sharded.ExecuteBatch(batch), want,
                        /*compare_stats=*/true,
                        "uncached shards=" + std::to_string(shards));
  }
}

// Per-shard engine thread counts must be invisible in answers, like every
// other thread count in the system.
TEST_F(ShardedSchedulerTest, AnswersIndependentOfShardThreadCounts) {
  std::vector<ServiceRequest> batch = DifferentialBatch(names_);
  std::vector<Result<ServiceResponse>> want;
  for (int threads : {1, 2, 4}) {
    ShardedScheduler sharded(3, ReferenceEngineOptions(threads));
    Seed(&sharded, nullptr);
    auto got = sharded.ExecuteBatch(batch);
    if (threads == 1) {
      want = std::move(got);
      continue;
    }
    ExpectSameResponses(got, want, /*compare_stats=*/true,
                        "threads=" + std::to_string(threads));
  }
}

// Streaming mode: same differential workload through ExecuteStreaming,
// compared slot-for-slot against the single scheduler's streaming path.
TEST_F(ShardedSchedulerTest, StreamingParityAcrossShardCounts) {
  std::vector<ServiceRequest> requests = DifferentialBatch(names_);
  auto stream_through = [&requests](auto* scheduler) {
    std::vector<Result<ServiceResponse>> responses;
    size_t cursor = 0;
    scheduler->ExecuteStreaming(
        [&](ServiceRequest* out) {
          if (cursor == requests.size()) return false;
          *out = requests[cursor++];
          return true;
        },
        [&](const Result<ServiceResponse>& response) {
          responses.push_back(response);
        });
    return responses;
  };

  Engine reference_engine(ReferenceEngineOptions());
  TreeCatalog reference_catalog;
  Seed(nullptr, &reference_catalog);
  QueryScheduler reference(&reference_engine, &reference_catalog);
  auto want = stream_through(&reference);

  for (int shards : {1, 2, 4, 8}) {
    ShardedScheduler sharded(shards, ReferenceEngineOptions());
    Seed(&sharded, nullptr);
    ExpectSameResponses(stream_through(&sharded), want,
                        /*compare_stats=*/true,
                        "streaming shards=" + std::to_string(shards));
  }
}

// The streaming interleaving contract survives sharding: response N is
// emitted before request N+1 is pulled, regardless of which shard answers.
TEST_F(ShardedSchedulerTest, StreamingEmitsEachResponseBeforeReadingNext) {
  ShardedScheduler sharded(4, ReferenceEngineOptions());
  Seed(&sharded, nullptr);
  std::vector<ServiceRequest> requests = {
      TopKRequest(names_[0], 2, TopKMetric::kSymDiff),
      TopKRequest(names_[1], 1, TopKMetric::kFootrule),
      WorldRequest(names_[2]),
  };
  std::vector<std::string> events;
  size_t cursor = 0;
  sharded.ExecuteStreaming(
      [&](ServiceRequest* out) {
        if (cursor == requests.size()) return false;
        events.push_back("read" + std::to_string(cursor));
        *out = requests[cursor++];
        return true;
      },
      [&](const Result<ServiceResponse>& response) {
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        events.push_back("emit" + std::to_string(cursor - 1));
      });
  EXPECT_EQ(events, (std::vector<std::string>{"read0", "emit0", "read1",
                                              "emit1", "read2", "emit2"}));
}

// ---------------------------------------------------------------------------
// Stats aggregation
// ---------------------------------------------------------------------------

TEST_F(ShardedSchedulerTest, StatsAggregateSumsPerShardBreakdown) {
  ShardedScheduler sharded(4, ReferenceEngineOptions());
  Seed(&sharded, nullptr);
  auto responses = sharded.ExecuteBatch(DifferentialBatch(names_));
  const Result<ServiceResponse>& stats = responses.back();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->shard_stats.size(), 4u);

  CacheStats rank_sum, marg_sum;
  int busy_shards = 0;
  for (const ShardCacheStats& shard : stats->shard_stats) {
    rank_sum.hits += shard.rank_dist.hits;
    rank_sum.misses += shard.rank_dist.misses;
    rank_sum.entries += shard.rank_dist.entries;
    rank_sum.bytes += shard.rank_dist.bytes;
    marg_sum.misses += shard.marginals.misses;
    marg_sum.bytes += shard.marginals.bytes;
    if (shard.rank_dist.misses + shard.marginals.misses > 0) ++busy_shards;
  }
  EXPECT_EQ(stats->stats.hits, rank_sum.hits);
  EXPECT_EQ(stats->stats.misses, rank_sum.misses);
  EXPECT_EQ(stats->stats.entries, rank_sum.entries);
  EXPECT_EQ(stats->stats.bytes, rank_sum.bytes);
  EXPECT_EQ(stats->marginals_stats.misses, marg_sum.misses);
  EXPECT_EQ(stats->marginals_stats.bytes, marg_sum.bytes);
  // Eight distinct trees over four shards: the fingerprint partition must
  // actually spread the work (deterministic for these fixed seeds).
  EXPECT_GT(busy_shards, 1);

  // The accessor view agrees with the in-band response.
  EXPECT_EQ(sharded.cache_stats().misses, stats->stats.misses);
  EXPECT_EQ(sharded.marginals_stats().misses, stats->marginals_stats.misses);
}

TEST_F(ShardedSchedulerTest, StatsResponseRendersShardBreakdownFields) {
  ShardedScheduler sharded(2, ReferenceEngineOptions());
  Seed(&sharded, nullptr);
  auto responses = sharded.ExecuteBatch(
      {TopKRequest(names_[0], 2, TopKMetric::kSymDiff), StatsRequest()});
  ASSERT_TRUE(responses[1].ok());
  std::string line = FormatResponseLine(ResponseToFields(*responses[1]));
  auto parsed = ParseResponseLine(line);
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->Find("shards"), nullptr);
  EXPECT_EQ(*parsed->Find("shards"), "2");
  // Aggregate fields lead; per-shard fields trail with s<i>_ prefixes.
  ASSERT_NE(parsed->Find("misses"), nullptr);
  ASSERT_NE(parsed->Find("s0_misses"), nullptr);
  ASSERT_NE(parsed->Find("s1_misses"), nullptr);
  ASSERT_NE(parsed->Find("s0_marg_misses"), nullptr);
  EXPECT_EQ(std::stoll(*parsed->Find("misses")),
            std::stoll(*parsed->Find("s0_misses")) +
                std::stoll(*parsed->Find("s1_misses")));
  // The single-engine scheduler's stats line carries no shard fields at
  // all — its wire output is byte-identical to the pre-sharding protocol.
  Engine engine(ReferenceEngineOptions());
  TreeCatalog catalog;
  QueryScheduler single(&engine, &catalog);
  auto single_stats = single.ExecuteBatch({StatsRequest()});
  ASSERT_TRUE(single_stats[0].ok());
  std::string single_line =
      FormatResponseLine(ResponseToFields(*single_stats[0]));
  EXPECT_EQ(single_line.find("shards="), std::string::npos);
  EXPECT_EQ(single_line.find("s0_"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Loads, the name directory, and error parity
// ---------------------------------------------------------------------------

TEST_F(ShardedSchedulerTest, LoadsRouteByFingerprintAndApplyBeforeQueries) {
  std::string tree_path = ::testing::TempDir() + "/sharded_load.sexp";
  std::string bid_path = ::testing::TempDir() + "/sharded_load.bid";
  ASSERT_TRUE(WriteStringToFile(tree_path, kOtherTreeText).ok());
  ASSERT_TRUE(WriteStringToFile(bid_path, "1 0.6 8\n1 0.3 5\n2 0.7 9\n").ok());

  ServiceRequest load;
  load.op = ServiceRequest::Op::kLoad;
  load.load_name = "late";
  load.load_file = tree_path;
  ServiceRequest load_bid = load;
  load_bid.load_name = "late_bid";
  load_bid.load_file = bid_path;
  load_bid.load_format = "bid";
  ServiceRequest load_missing = load;
  load_missing.load_name = "missing_file";
  load_missing.load_file = ::testing::TempDir() + "/does_not_exist.sexp";

  ShardedScheduler sharded(4, ReferenceEngineOptions());
  // Batch semantics: the query references a tree loaded later in the batch.
  auto results = sharded.ExecuteBatch(
      {TopKRequest("late", 1, TopKMetric::kSymDiff), load, load_bid,
       load_missing, TopKRequest("late_bid", 1, TopKMetric::kSymDiff)});
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  ASSERT_TRUE(results[1].ok());
  ASSERT_TRUE(results[2].ok());
  EXPECT_FALSE(results[3].ok());
  ASSERT_TRUE(results[4].ok());
  // The fingerprint on the wire is the catalog's content hash, identical
  // to what an unsharded load reports.
  EXPECT_EQ(results[1]->fingerprint,
            TreeCatalog::FingerprintTree(*ParseTree(kOtherTreeText)));
}

TEST_F(ShardedSchedulerTest, DirectorySemanticsMatchTheSingleCatalog) {
  ShardedScheduler sharded(8, ReferenceEngineOptions());
  TreeCatalog single;

  // Insert, idempotent re-insert, rebind conflict: same statuses and the
  // same message text as the one-catalog path, whichever shards are hit.
  auto sharded_first = sharded.Insert("n", *ParseTree(kTreeText));
  auto single_first = single.Insert("n", *ParseTree(kTreeText));
  ASSERT_TRUE(sharded_first.ok());
  EXPECT_EQ(sharded_first->content_fp, single_first->content_fp);

  EXPECT_TRUE(sharded.Insert("n", *ParseTree(kTreeText)).ok());

  auto sharded_conflict = sharded.Insert("n", *ParseTree(kOtherTreeText));
  auto single_conflict = single.Insert("n", *ParseTree(kOtherTreeText));
  ASSERT_FALSE(sharded_conflict.ok());
  EXPECT_EQ(sharded_conflict.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(sharded_conflict.status().message(),
            single_conflict.status().message());

  // Unknown names: the routing layer's NotFound is byte-identical to
  // TreeCatalog::Lookup's.
  auto sharded_missing =
      sharded.ExecuteOne(TopKRequest("ghost", 2, TopKMetric::kSymDiff));
  auto single_missing = single.Lookup("ghost");
  ASSERT_FALSE(sharded_missing.ok());
  EXPECT_EQ(sharded_missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(sharded_missing.status().message(),
            single_missing.status().message());

  // Empty names are rejected by the owning catalog, as ever.
  EXPECT_FALSE(sharded.Insert("", *ParseTree(kTreeText)).ok());
}

// Streaming order sensitivity carries over: a query before its load fails,
// the same query after it succeeds, stats are point-in-time.
TEST_F(ShardedSchedulerTest, StreamingIsOrderSensitive) {
  std::string tree_path = ::testing::TempDir() + "/sharded_stream.sexp";
  ASSERT_TRUE(WriteStringToFile(tree_path, kTreeText).ok());
  ServiceRequest load;
  load.op = ServiceRequest::Op::kLoad;
  load.load_name = "s";
  load.load_file = tree_path;
  std::vector<ServiceRequest> requests = {
      StatsRequest(), TopKRequest("s", 2, TopKMetric::kSymDiff), load,
      TopKRequest("s", 2, TopKMetric::kSymDiff)};

  ShardedScheduler sharded(2, ReferenceEngineOptions());
  std::vector<Result<ServiceResponse>> streamed;
  size_t cursor = 0;
  sharded.ExecuteStreaming(
      [&](ServiceRequest* out) {
        if (cursor == requests.size()) return false;
        *out = requests[cursor++];
        return true;
      },
      [&](const Result<ServiceResponse>& response) {
        streamed.push_back(response);
      });
  ASSERT_EQ(streamed.size(), 4u);
  ASSERT_TRUE(streamed[0].ok());
  EXPECT_EQ(streamed[0]->stats.misses, 0);
  ASSERT_FALSE(streamed[1].ok());
  EXPECT_EQ(streamed[1].status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(streamed[2].ok());
  ASSERT_TRUE(streamed[3].ok());
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan target)
// ---------------------------------------------------------------------------

// Concurrent ExecuteBatch calls through one sharded front-end: every
// answer equals the single-threaded reference; TSan watches the directory
// mutex, the per-shard catalogs/caches, and the fan-out helper threads.
TEST_F(ShardedSchedulerTest, ConcurrentExecuteBatchCallsAgreeWithReference) {
  ShardedScheduler sharded(3, ReferenceEngineOptions());
  Seed(&sharded, nullptr);
  const std::vector<ServiceRequest> batch = {
      TopKRequest(names_[2], 3, TopKMetric::kSymDiff),
      TopKRequest(names_[3], 3, TopKMetric::kKendall),
      WorldRequest(names_[4]),
      TopKRequest(names_[5], 2, TopKMetric::kFootrule),
  };
  auto reference = sharded.ExecuteBatch(batch);
  for (const auto& slot : reference) ASSERT_TRUE(slot.ok());

  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::vector<std::vector<Result<ServiceResponse>>> observed(
      kThreads * kRounds);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, &sharded, &batch, &observed, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Idempotent re-inserts race with queries, as they may in a server.
        EXPECT_TRUE(sharded.Insert(names_[2], trees_[2]).ok());
        sharded.cache_stats();
        observed[t * kRounds + round] = sharded.ExecuteBatch(batch);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (const auto& results : observed) {
    ExpectSameResponses(results, reference, /*compare_stats=*/false,
                        "concurrent");
  }
}

// ---------------------------------------------------------------------------
// Metrics: sharded scrapes vs the single scheduler
// ---------------------------------------------------------------------------

ServiceRequest MetricsRequest(const std::string& format = "kv") {
  ServiceRequest request;
  request.op = ServiceRequest::Op::kMetrics;
  request.metrics_format = format;
  return request;
}

// The scrape as a name -> value map, with the per-engine arena high-water
// gauge dropped: it measures each engine's private scratch memory, so a
// single 2-thread engine and four 2-thread shard engines legitimately
// report different peaks. Every other sample is layout-independent.
std::map<std::string, std::string> ComparableKv(const MetricsSnapshot& snap) {
  std::map<std::string, std::string> map;
  for (const auto& [name, value] : MetricsToKvPairs(snap)) {
    if (name.rfind("cpdb_poly_arena", 0) == 0) continue;
    map[name] = value;
  }
  return map;
}

// With a *fixed* FakeClock every recorded duration is exactly 0, so the
// scrape — counters, error counts, histogram counts and values — must be
// value-identical between the single scheduler and any shard count: the
// sharded front-end attributes each request to exactly one shard's
// registry, and the merged scrape is what one scheduler would have
// recorded.
TEST_F(ShardedSchedulerTest, MetricsScrapeParityAcrossShardCounts) {
  FakeClock clock(1000);  // never advanced: all durations are 0
  SchedulerOptions options;
  options.clock = &clock;

  std::vector<ServiceRequest> batch = DifferentialBatch(names_);
  batch.push_back(MetricsRequest());

  Engine engine(ReferenceEngineOptions());
  TreeCatalog catalog;
  Seed(nullptr, &catalog);
  QueryScheduler reference(&engine, &catalog, options);
  auto want_responses = reference.ExecuteBatch(batch);
  const auto want = ComparableKv(reference.MetricsSnapshotNow());

  for (int shards : {1, 2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedScheduler sharded(shards, ReferenceEngineOptions(), options);
    Seed(&sharded, nullptr);
    auto got_responses = sharded.ExecuteBatch(batch);
    // Aggregate stats counters match under an unbounded budget; the
    // scrape comparison below is the real point.
    ExpectSameResponses(got_responses, want_responses, /*compare_stats=*/true,
                        "metrics parity");
    const auto got = ComparableKv(sharded.MetricsSnapshotNow());
    EXPECT_EQ(got, want);
  }
}

// The merged scrape is exactly the bucket-wise sum of the per-shard
// scrapes — in any merge order.
TEST_F(ShardedSchedulerTest, MergedScrapeEqualsBucketwiseSumOfPerShard) {
  ShardedScheduler sharded(3, ReferenceEngineOptions());
  Seed(&sharded, nullptr);
  auto results = sharded.ExecuteBatch(DifferentialBatch(names_));
  ASSERT_FALSE(results.empty());

  const std::vector<MetricsSnapshot> per_shard =
      sharded.PerShardMetricsSnapshots();
  ASSERT_EQ(per_shard.size(), 3u);
  const MetricsSnapshot merged = sharded.MetricsSnapshotNow();

  MetricsSnapshot forward = per_shard[0];
  forward.MergeFrom(per_shard[1]);
  forward.MergeFrom(per_shard[2]);
  MetricsSnapshot reversed = per_shard[2];
  reversed.MergeFrom(per_shard[1]);
  reversed.MergeFrom(per_shard[0]);

  for (const MetricsSnapshot* manual : {&forward, &reversed}) {
    ASSERT_EQ(manual->samples.size(), merged.samples.size());
    for (size_t i = 0; i < merged.samples.size(); ++i) {
      SCOPED_TRACE(merged.samples[i].name);
      EXPECT_EQ(manual->samples[i].name, merged.samples[i].name);
      EXPECT_EQ(manual->samples[i].kind, merged.samples[i].kind);
      EXPECT_EQ(manual->samples[i].value, merged.samples[i].value);
      EXPECT_EQ(manual->samples[i].hist, merged.samples[i].hist);
    }
  }

  // Spot-check the sum structurally: every request the batch carried is
  // counted on exactly one shard.
  int64_t per_shard_requests = 0;
  for (const MetricsSnapshot& snap : per_shard) {
    const MetricSample* sample = snap.Find("cpdb_requests_total");
    ASSERT_NE(sample, nullptr);
    per_shard_requests += sample->value;
  }
  EXPECT_EQ(per_shard_requests,
            merged.Find("cpdb_requests_total")->value);
  EXPECT_EQ(per_shard_requests,
            static_cast<int64_t>(DifferentialBatch(names_).size()));
}

// The tentpole contract, pinned with the *real* clock: answer bytes are
// identical whether metrics are on, off, traced, or the batch is served
// by 1, 2, or 4 shards. Timing rides strictly side-band (trace_* fields),
// so stripping those fields must recover the reference bytes exactly.
TEST_F(ShardedSchedulerTest, WireBytesIdenticalAcrossMetricsTraceAndShards) {
  const std::vector<ServiceRequest> batch = DifferentialBatch(names_);
  std::vector<ServiceRequest> traced = batch;
  for (ServiceRequest& request : traced) request.trace = true;

  // Renders each slot the way serve does, with the two *declared*
  // divergences stripped: trace_* fields (the side band under test) and
  // the kStats per-shard breakdown (pinned separately by
  // StatsResponseRendersShardBreakdownFields) — everything else must be
  // bitwise stable.
  auto render = [](const std::vector<Result<ServiceResponse>>& results) {
    std::vector<std::string> lines;
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        lines.push_back(FormatErrorLine(i + 1, results[i].status()));
        continue;
      }
      std::string line = FormatResponseLine(ResponseToFields(*results[i]));
      for (const char* side_band : {"\ttrace_", "\tshards="}) {
        const size_t cut = line.find(side_band);
        if (cut != std::string::npos) line = line.substr(0, cut) + "\n";
      }
      lines.push_back(line);
    }
    return lines;
  };

  Engine engine(ReferenceEngineOptions());
  TreeCatalog catalog;
  Seed(nullptr, &catalog);
  QueryScheduler reference(&engine, &catalog, SchedulerOptions());
  const std::vector<std::string> want = render(reference.ExecuteBatch(batch));

  {
    SCOPED_TRACE("metrics off");
    Engine off_engine(ReferenceEngineOptions());
    TreeCatalog off_catalog;
    Seed(nullptr, &off_catalog);
    SchedulerOptions off;
    off.enable_metrics = false;
    QueryScheduler scheduler(&off_engine, &off_catalog, off);
    EXPECT_EQ(render(scheduler.ExecuteBatch(batch)), want);
  }
  {
    SCOPED_TRACE("trace on");
    Engine traced_engine(ReferenceEngineOptions());
    TreeCatalog traced_catalog;
    Seed(nullptr, &traced_catalog);
    QueryScheduler scheduler(&traced_engine, &traced_catalog,
                             SchedulerOptions());
    EXPECT_EQ(render(scheduler.ExecuteBatch(traced)), want);
  }
  for (int shards : {1, 2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    // Fresh front-ends per run: op=stats reports cumulative counters, so
    // a second batch on a warm instance would legitimately differ.
    ShardedScheduler sharded(shards, ReferenceEngineOptions());
    Seed(&sharded, nullptr);
    EXPECT_EQ(render(sharded.ExecuteBatch(batch)), want);
    ShardedScheduler resharded(shards, ReferenceEngineOptions());
    Seed(&resharded, nullptr);
    EXPECT_EQ(render(resharded.ExecuteBatch(traced)), want);
  }
}

// op=metrics speaks both formats through the sharded front-end, refuses
// identically to the single scheduler when metrics are off, and the prom
// body renders the merged scrape.
TEST_F(ShardedSchedulerTest, MetricsOpFormatsAndDisabledRefusal) {
  ShardedScheduler sharded(2, ReferenceEngineOptions());
  Seed(&sharded, nullptr);
  auto kv = sharded.ExecuteOne(MetricsRequest("kv"));
  ASSERT_TRUE(kv.ok());
  EXPECT_EQ(kv->metrics_format, "kv");
  EXPECT_NE(kv->metrics.Find("cpdb_requests_total"), nullptr);

  auto prom = sharded.ExecuteOne(MetricsRequest("prom"));
  ASSERT_TRUE(prom.ok());
  EXPECT_EQ(prom->metrics_format, "prom");
  const std::string body = MetricsToPrometheusText(prom->metrics);
  EXPECT_EQ(body.rfind("# HELP ", 0), 0u);

  SchedulerOptions off;
  off.enable_metrics = false;
  ShardedScheduler disabled(2, ReferenceEngineOptions(), off);
  auto refused = disabled.ExecuteOne(MetricsRequest());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);

  Engine engine(ReferenceEngineOptions());
  TreeCatalog catalog;
  QueryScheduler single(&engine, &catalog, off);
  auto single_refused = single.ExecuteOne(MetricsRequest());
  ASSERT_FALSE(single_refused.ok());
  // Refusal parity is wire parity: same code, same message.
  EXPECT_EQ(single_refused.status().code(), refused.status().code());
  EXPECT_EQ(single_refused.status().message(), refused.status().message());
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Exhaustive possible-worlds differential suite: on random small and/xor and
// BID trees (seeded RNG, <= 12 leaves) every closed-form consensus answer —
// the four Top-k metrics and set consensus, all routed through cpdb::Engine —
// is cross-checked against the brute-force definition from the paper: the
// expected distance is literally sum_w Pr(w) * d(answer, query(w)) over the
// enumerated worlds, and optimal answers must achieve the minimum of that
// sum over the whole (tiny) answer space.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/rank_distribution.h"
#include "core/set_consensus.h"
#include "core/topk_kendall.h"
#include "core/topk_metrics.h"
#include "engine/engine.h"
#include "model/possible_worlds.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

constexpr double kTol = 1e-8;

// A world with its Top-k answer precomputed, so the many brute-force
// expectations below reuse one enumeration pass.
struct RankedWorld {
  double prob = 0.0;
  std::vector<NodeId> leaves;
  std::vector<KeyId> topk;
};

std::vector<RankedWorld> MaterializeWorlds(const AndXorTree& tree, int k) {
  auto worlds = EnumerateWorlds(tree, 1 << 14);
  EXPECT_TRUE(worlds.ok());
  std::vector<RankedWorld> out;
  out.reserve(worlds->size());
  for (const World& w : *worlds) {
    out.push_back({w.prob, w.leaf_ids, TopKOfWorld(tree, w.leaf_ids, k)});
  }
  return out;
}

// The paper's definition of the expected Top-k distance, verbatim:
// sum over possible worlds of Pr(w) * d(answer, topk(w)).
double BruteExpectedTopK(const std::vector<RankedWorld>& worlds,
                         const std::vector<KeyId>& answer, int k,
                         TopKMetric metric) {
  double expected = 0.0;
  for (const RankedWorld& w : worlds) {
    expected += w.prob * TopKListDistance(answer, w.topk, k, metric);
  }
  return expected;
}

// Brute minimum of the expected distance over every ordered size-k answer
// drawn from `keys` (the full answer space Omega of Section 5).
double BruteMinOverOrderedAnswers(const std::vector<RankedWorld>& worlds,
                                  const std::vector<KeyId>& keys, int k,
                                  TopKMetric metric) {
  double best = std::numeric_limits<double>::infinity();
  std::vector<KeyId> current;
  std::vector<bool> used(keys.size(), false);
  std::function<void()> recurse = [&] {
    if (static_cast<int>(current.size()) == k) {
      best = std::min(best, BruteExpectedTopK(worlds, current, k, metric));
      return;
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      if (used[i]) continue;
      used[i] = true;
      current.push_back(keys[i]);
      recurse();
      current.pop_back();
      used[i] = false;
    }
  };
  recurse();
  return best;
}

// |S Delta W| over sorted NodeId vectors — an implementation independent of
// core/set_consensus.cc (which never forms the difference explicitly).
double LeafSetSymDiff(const std::vector<NodeId>& a,
                      const std::vector<NodeId>& b) {
  std::set<NodeId> sa(a.begin(), a.end());
  std::set<NodeId> sb(b.begin(), b.end());
  int diff = 0;
  for (NodeId x : sa) diff += sb.count(x) == 0 ? 1 : 0;
  for (NodeId x : sb) diff += sa.count(x) == 0 ? 1 : 0;
  return static_cast<double>(diff);
}

double BruteExpectedSetDistance(const std::vector<RankedWorld>& worlds,
                                const std::vector<NodeId>& answer) {
  double expected = 0.0;
  for (const RankedWorld& w : worlds) {
    expected += w.prob * LeafSetSymDiff(answer, w.leaves);
  }
  return expected;
}

// Small random instances of both structural families. Trees whose leaf count
// exceeds `max_leaves` are skipped (the generators are size-randomized).
std::vector<AndXorTree> SmallTrees(int max_leaves) {
  std::vector<AndXorTree> trees;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    RandomTreeOptions opts;
    opts.num_keys = 5;
    opts.max_depth = 3;
    opts.max_alternatives = 2;
    auto deep = RandomAndXorTree(opts, &rng);
    EXPECT_TRUE(deep.ok());
    if (deep.ok() && deep->NumLeaves() <= max_leaves) {
      trees.push_back(std::move(*deep));
    }
    auto bid = RandomBid(opts, &rng);
    EXPECT_TRUE(bid.ok());
    if (bid.ok() && bid->NumLeaves() <= max_leaves) {
      trees.push_back(std::move(*bid));
    }
  }
  EXPECT_GE(trees.size(), 8u) << "generators produced too few small trees";
  return trees;
}

Engine MakeEngine() {
  EngineOptions opts;
  opts.num_threads = 2;
  opts.use_fast_bid_path = false;
  return Engine(opts);
}

// --- Mean answers: closed-form expectation AND optimality -------------------

TEST(DifferentialTest, MeanSymDiffIsBruteOptimal) {
  Engine engine = MakeEngine();
  for (const AndXorTree& tree : SmallTrees(12)) {
    for (int k : {1, 2, 3}) {
      std::vector<RankedWorld> worlds = MaterializeWorlds(tree, k);
      auto mean = engine.ConsensusTopK(tree, k, TopKMetric::kSymDiff);
      ASSERT_TRUE(mean.ok());
      double brute = BruteExpectedTopK(worlds, mean->keys, k,
                                       TopKMetric::kSymDiff);
      ASSERT_NEAR(mean->expected_distance, brute, kTol);
      // d_Delta ignores order, so ordered enumeration is also the set
      // optimum; the mean answer must achieve it.
      double best = BruteMinOverOrderedAnswers(worlds, tree.Keys(), k,
                                               TopKMetric::kSymDiff);
      ASSERT_NEAR(mean->expected_distance, best, kTol);
    }
  }
}

TEST(DifferentialTest, MeanSymDiffUnrestrictedBeatsEverySubset) {
  Engine engine = MakeEngine();
  for (const AndXorTree& tree : SmallTrees(12)) {
    const int k = 2;
    std::vector<RankedWorld> worlds = MaterializeWorlds(tree, k);
    auto answer = engine.ConsensusTopK(tree, k, TopKMetric::kSymDiff,
                                       TopKAnswer::kMeanUnrestricted);
    ASSERT_TRUE(answer.ok());
    ASSERT_NEAR(
        answer->expected_distance,
        BruteExpectedTopK(worlds, answer->keys, k, TopKMetric::kSymDiff),
        kTol);
    // The size-unrestricted mean minimizes over every subset of keys (any
    // size); order is irrelevant under d_Delta.
    std::vector<KeyId> keys = tree.Keys();
    ASSERT_LE(keys.size(), 12u);
    for (uint32_t mask = 0; mask < (1u << keys.size()); ++mask) {
      std::vector<KeyId> subset;
      for (size_t i = 0; i < keys.size(); ++i) {
        if (mask & (1u << i)) subset.push_back(keys[i]);
      }
      double e = BruteExpectedTopK(worlds, subset, k, TopKMetric::kSymDiff);
      ASSERT_GE(e, answer->expected_distance - kTol)
          << "subset mask " << mask << " beats the unrestricted mean";
    }
  }
}

TEST(DifferentialTest, MedianSymDiffIsBestRealizableTopK) {
  Engine engine = MakeEngine();
  for (const AndXorTree& tree : SmallTrees(12)) {
    for (int k : {1, 2, 3}) {
      std::vector<RankedWorld> worlds = MaterializeWorlds(tree, k);
      auto median = engine.ConsensusTopK(tree, k, TopKMetric::kSymDiff,
                                         TopKAnswer::kMedian);
      ASSERT_TRUE(median.ok());
      ASSERT_NEAR(
          median->expected_distance,
          BruteExpectedTopK(worlds, median->keys, k, TopKMetric::kSymDiff),
          kTol);
      // Theorem 4 semantics: the median is the Top-k answer of some
      // positive-probability world, and no realizable Top-k answer does
      // better.
      bool realizable = false;
      double best = std::numeric_limits<double>::infinity();
      for (const RankedWorld& w : worlds) {
        best = std::min(best,
                        BruteExpectedTopK(worlds, w.topk, k,
                                          TopKMetric::kSymDiff));
        realizable = realizable || w.topk == median->keys;
      }
      ASSERT_TRUE(realizable) << "median is not any world's Top-k";
      ASSERT_NEAR(median->expected_distance, best, kTol);
    }
  }
}

TEST(DifferentialTest, MeanIntersectionExactIsBruteOptimal) {
  Engine engine = MakeEngine();
  for (const AndXorTree& tree : SmallTrees(12)) {
    for (int k : {1, 2, 3}) {
      std::vector<RankedWorld> worlds = MaterializeWorlds(tree, k);
      auto exact = engine.ConsensusTopK(tree, k, TopKMetric::kIntersection);
      ASSERT_TRUE(exact.ok());
      ASSERT_NEAR(
          exact->expected_distance,
          BruteExpectedTopK(worlds, exact->keys, k, TopKMetric::kIntersection),
          kTol);
      double best = BruteMinOverOrderedAnswers(worlds, tree.Keys(), k,
                                               TopKMetric::kIntersection);
      ASSERT_NEAR(exact->expected_distance, best, kTol);
      // The H_k approximation is only consistency-checked: its closed-form
      // expectation must equal the brute-force sum for its own answer.
      auto approx = engine.ConsensusTopK(tree, k, TopKMetric::kIntersection,
                                         TopKAnswer::kMeanApprox);
      ASSERT_TRUE(approx.ok());
      ASSERT_NEAR(approx->expected_distance,
                  BruteExpectedTopK(worlds, approx->keys, k,
                                    TopKMetric::kIntersection),
                  kTol);
      ASSERT_GE(approx->expected_distance, exact->expected_distance - kTol);
    }
  }
}

TEST(DifferentialTest, MeanFootruleIsBruteOptimal) {
  Engine engine = MakeEngine();
  for (const AndXorTree& tree : SmallTrees(12)) {
    for (int k : {1, 2, 3}) {
      std::vector<RankedWorld> worlds = MaterializeWorlds(tree, k);
      auto foot = engine.ConsensusTopK(tree, k, TopKMetric::kFootrule);
      ASSERT_TRUE(foot.ok());
      ASSERT_NEAR(
          foot->expected_distance,
          BruteExpectedTopK(worlds, foot->keys, k, TopKMetric::kFootrule),
          kTol);
      double best = BruteMinOverOrderedAnswers(worlds, tree.Keys(), k,
                                               TopKMetric::kFootrule);
      ASSERT_NEAR(foot->expected_distance, best, kTol);
    }
  }
}

TEST(DifferentialTest, KendallAnswersMatchEnumeration) {
  Engine engine = MakeEngine();
  for (const AndXorTree& tree : SmallTrees(12)) {
    for (int k : {1, 2, 3}) {
      std::vector<RankedWorld> worlds = MaterializeWorlds(tree, k);
      // The engine's (via-footrule, 2-approximate) answer: its closed-form
      // d_K expectation must equal the brute-force sum.
      auto via_foot = engine.ConsensusTopK(tree, k, TopKMetric::kKendall);
      ASSERT_TRUE(via_foot.ok());
      ASSERT_NEAR(
          via_foot->expected_distance,
          BruteExpectedTopK(worlds, via_foot->keys, k, TopKMetric::kKendall),
          kTol);
      // The subset-DP exact optimizer (restricted to candidates with
      // Pr(r(t) <= k) > 0, as its contract states): its answer must achieve
      // the brute minimum over ordered answers from that candidate set, and
      // never beat it.
      RankDistribution dist = ComputeRankDistribution(tree, k);
      KendallEvaluator evaluator(tree, k);
      auto exact = MeanTopKKendallExactDp(evaluator, dist);
      if (!exact.ok()) continue;  // more candidates than the DP accepts
      std::vector<KeyId> candidates;
      for (KeyId key : evaluator.keys()) {
        if (dist.PrTopK(key) > 0.0) candidates.push_back(key);
      }
      if (static_cast<int>(candidates.size()) < k) continue;
      ASSERT_NEAR(
          exact->expected_distance,
          BruteExpectedTopK(worlds, exact->keys, k, TopKMetric::kKendall),
          kTol);
      double best = BruteMinOverOrderedAnswers(worlds, candidates, k,
                                               TopKMetric::kKendall);
      ASSERT_NEAR(exact->expected_distance, best, kTol);
      ASSERT_GE(via_foot->expected_distance, best - kTol);
    }
  }
}

// --- Set consensus ----------------------------------------------------------

TEST(DifferentialTest, SetConsensusMatchesEnumeration) {
  Engine engine = MakeEngine();
  for (const AndXorTree& tree : SmallTrees(10)) {
    std::vector<RankedWorld> worlds = MaterializeWorlds(tree, 1);
    // Mean world: closed-form objective equals the brute sum, and no leaf
    // subset whatsoever does better (Theorem 2 optimality).
    std::vector<NodeId> mean = engine.MeanWorldSymDiff(tree);
    double mean_expected = engine.ExpectedSymDiffDistance(tree, mean);
    ASSERT_NEAR(mean_expected, BruteExpectedSetDistance(worlds, mean), kTol);
    const std::vector<NodeId>& leaves = tree.LeafIds();
    for (uint32_t mask = 0; mask < (1u << leaves.size()); ++mask) {
      std::vector<NodeId> subset;
      for (size_t i = 0; i < leaves.size(); ++i) {
        if (mask & (1u << i)) subset.push_back(leaves[i]);
      }
      ASSERT_GE(BruteExpectedSetDistance(worlds, subset), mean_expected - kTol)
          << "leaf subset mask " << mask << " beats the mean world";
    }
    // Median world: realizable, and the best among all realizable worlds
    // (Corollary 1: its objective also ties the unrestricted mean's).
    std::vector<NodeId> median = engine.MedianWorldSymDiff(tree);
    double median_expected = engine.ExpectedSymDiffDistance(tree, median);
    ASSERT_NEAR(median_expected, BruteExpectedSetDistance(worlds, median),
                kTol);
    bool realizable = false;
    double best = std::numeric_limits<double>::infinity();
    for (const RankedWorld& w : worlds) {
      best = std::min(best, BruteExpectedSetDistance(worlds, w.leaves));
      realizable = realizable || w.leaves == median;
    }
    ASSERT_TRUE(realizable) << "median world has zero probability";
    ASSERT_NEAR(median_expected, best, kTol);
    ASSERT_NEAR(median_expected, mean_expected, kTol);
  }
}

// --- Batch API --------------------------------------------------------------

TEST(DifferentialTest, BatchAnswersMatchEnumeration) {
  Engine engine = MakeEngine();
  std::vector<AndXorTree> trees = SmallTrees(12);
  const int k = 2;
  std::vector<Engine::ConsensusQuery> queries;
  for (const AndXorTree& tree : trees) {
    for (TopKMetric metric :
         {TopKMetric::kSymDiff, TopKMetric::kIntersection,
          TopKMetric::kFootrule, TopKMetric::kKendall}) {
      queries.push_back({&tree, k, metric, TopKAnswer::kMean});
    }
  }
  std::vector<Result<TopKResult>> results =
      engine.EvaluateConsensusBatch(queries);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "slot " << i;
    std::vector<RankedWorld> worlds = MaterializeWorlds(*queries[i].tree, k);
    ASSERT_NEAR(results[i]->expected_distance,
                BruteExpectedTopK(worlds, results[i]->keys, k,
                                  queries[i].metric),
                kTol)
        << "slot " << i;
  }
}

}  // namespace
}  // namespace cpdb

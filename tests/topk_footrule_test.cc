// Copyright 2026 The ConsensusDB Authors
//
// Section 5.4: the footrule mean Top-k answer via assignment. The evaluator
// cross-check against exhaustive enumeration is the test that pinned down
// the sign discrepancy in the paper's Figure 2 (see topk_footrule.h).

#include "core/topk_footrule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>

#include "common/rng.h"
#include "core/evaluation.h"
#include "model/builders.h"
#include "workload/generators.h"

namespace cpdb {
namespace {

constexpr int kK = 3;

class TopKFootruleProperty : public ::testing::TestWithParam<int> {};

TEST_P(TopKFootruleProperty, EvaluatorMatchesEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 101 + 7);
  RandomTreeOptions opts;
  opts.num_keys = 6;
  opts.max_depth = 3;
  opts.max_alternatives = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, kK);
  if (static_cast<int>(dist.keys().size()) < kK) GTEST_SKIP();

  std::vector<KeyId> keys = tree->Keys();
  for (int trial = 0; trial < 5; ++trial) {
    rng.Shuffle(&keys);
    std::vector<KeyId> answer(keys.begin(), keys.begin() + kK);
    auto expected =
        EnumExpectedTopKDistance(*tree, answer, kK, TopKMetric::kFootrule);
    ASSERT_TRUE(expected.ok());
    EXPECT_NEAR(ExpectedTopKFootrule(dist, answer), *expected, 1e-9)
        << "footrule closed form diverges from enumeration";
  }
}

TEST_P(TopKFootruleProperty, AssignmentBeatsAllOrderedAnswers) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 103 + 9);
  RandomTreeOptions opts;
  opts.num_keys = 5;
  opts.max_depth = 2;
  auto tree = RandomAndXorTree(opts, &rng);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, kK);
  if (static_cast<int>(dist.keys().size()) < kK) GTEST_SKIP();

  auto mean = MeanTopKFootrule(dist);
  ASSERT_TRUE(mean.ok());

  std::vector<KeyId> keys = dist.keys();
  double best = std::numeric_limits<double>::infinity();
  std::vector<KeyId> current;
  std::vector<bool> used(keys.size(), false);
  std::function<void()> recurse = [&]() {
    if (current.size() == static_cast<size_t>(kK)) {
      best = std::min(best, ExpectedTopKFootrule(dist, current));
      return;
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      if (used[i]) continue;
      used[i] = true;
      current.push_back(keys[i]);
      recurse();
      current.pop_back();
      used[i] = false;
    }
  };
  recurse();
  EXPECT_NEAR(mean->expected_distance, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKFootruleProperty, ::testing::Range(0, 15));

TEST(TopKFootruleTest, UpsilonStatisticsOnCertainDatabase) {
  std::vector<IndependentTuple> tuples;
  for (int i = 0; i < 4; ++i) {
    IndependentTuple t;
    t.alt.key = i;
    t.alt.score = 10.0 - i;
    t.prob = 1.0;
    tuples.push_back(t);
  }
  auto tree = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, 3);
  // Key 1 is deterministically at rank 2.
  EXPECT_NEAR(Upsilon2(dist, 1), 2.0, 1e-12);
  EXPECT_NEAR(Upsilon3(dist, 1, 2), 0.0, 1e-12);
  EXPECT_NEAR(Upsilon3(dist, 1, 3), 1.0, 1e-12);
  // Key 3 is always beyond k=3: Upsilon3(t, i) = i.
  EXPECT_NEAR(Upsilon3(dist, 3, 2), 2.0, 1e-12);
}

TEST(TopKFootruleTest, CertainDatabaseHasZeroOptimalDistance) {
  std::vector<IndependentTuple> tuples;
  for (int i = 0; i < 5; ++i) {
    IndependentTuple t;
    t.alt.key = i;
    t.alt.score = 100.0 - i;
    t.prob = 1.0;
    tuples.push_back(t);
  }
  auto tree = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, 3);
  auto mean = MeanTopKFootrule(dist);
  ASSERT_TRUE(mean.ok());
  std::vector<KeyId> truth = {0, 1, 2};
  EXPECT_EQ(mean->keys, truth);
  EXPECT_NEAR(mean->expected_distance, 0.0, 1e-9);
}

TEST(TopKFootruleTest, OrderMattersInTheAnswer) {
  // A tuple with high Pr(rank = 1) should land at position 1 rather than 3.
  std::vector<IndependentTuple> tuples;
  double scores[] = {10, 8, 6, 4};
  for (int i = 0; i < 4; ++i) {
    IndependentTuple t;
    t.alt.key = i;
    t.alt.score = scores[i];
    t.prob = 0.95;
    tuples.push_back(t);
  }
  auto tree = MakeTupleIndependent(tuples);
  ASSERT_TRUE(tree.ok());
  RankDistribution dist = ComputeRankDistribution(*tree, 3);
  auto mean = MeanTopKFootrule(dist);
  ASSERT_TRUE(mean.ok());
  std::vector<KeyId> truth = {0, 1, 2};
  EXPECT_EQ(mean->keys, truth);

  // Reversing the answer strictly increases the expected footrule distance.
  std::vector<KeyId> reversed = {2, 1, 0};
  EXPECT_GT(ExpectedTopKFootrule(dist, reversed), mean->expected_distance);
}

}  // namespace
}  // namespace cpdb

// Copyright 2026 The ConsensusDB Authors
//
// Scenario: information extraction with structural correlations — the use
// case that needs the full and/xor tree model. An extractor segments the
// text "52-A Goregaon West Mumbai" into (address, city) pairs; the two
// fields are correlated: choosing the segmentation boundary fixes both.
// Mutual exclusion (XOR) captures the boundary choice; coexistence (AND)
// captures fields determined by the same choice. (This mirrors Example 1.2
// of Gupta & Sarawagi's work cited by the paper.)
//
// The example also exercises the text serialization: the tree is parsed
// from its s-expression form, and the consensus machinery runs on top.
//
//   $ ./information_extraction

#include <cstdio>

#include "core/set_consensus.h"
#include "core/topk_symdiff.h"
#include "io/tree_text.h"
#include "model/possible_worlds.h"

using namespace cpdb;

int main() {
  // Keys: 1 = address field, 2 = city field. Scores encode extractor
  // confidence (used as ranking scores). Segmentation A ("52-A Goregaon
  // West" / "Mumbai") has probability 0.55; segmentation B ("52-A" /
  // "Goregaon West Mumbai") has probability 0.45. Within a segmentation the
  // two fields coexist.
  const char* kTreeText =
      "(xor"
      " 0.55 (and (leaf key=1 score=0.72) (leaf key=2 score=0.81))"
      " 0.45 (and (leaf key=1 score=0.33) (leaf key=2 score=0.27)))";

  auto tree_or = ParseTree(kTreeText);
  if (!tree_or.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 tree_or.status().ToString().c_str());
    return 1;
  }
  const AndXorTree& tree = *tree_or;
  std::printf("== Extraction uncertainty model ==\n%s\n",
              tree.ToString().c_str());

  auto worlds = EnumerateWorlds(tree);
  std::printf("Possible extraction outcomes:\n");
  for (const World& w : *worlds) {
    std::printf("  prob %.2f:", w.prob);
    for (const TupleAlternative& t : WorldTuples(tree, w.leaf_ids)) {
      std::printf(" (field %d, conf %.2f)", t.key, t.score);
    }
    std::printf("\n");
  }

  // A naive per-tuple threshold at 0.5 would mix alternatives from the two
  // segmentations (each field's first alternative has marginal 0.55), which
  // is fine here — but the *median* world is guaranteed to be an outcome the
  // extractor could actually produce.
  std::vector<NodeId> mean = MeanWorldSymDiff(tree);
  std::vector<NodeId> median = MedianWorldSymDiff(tree);
  auto print_world = [&](const char* name, const std::vector<NodeId>& world) {
    std::printf("%s (E[d_Delta] = %.3f):", name,
                ExpectedSymDiffDistance(tree, world));
    for (NodeId l : world) {
      std::printf(" (field %d, conf %.2f)", tree.node(l).leaf.key,
                  tree.node(l).leaf.score);
    }
    std::printf("\n");
  };
  std::printf("\n== Consensus extractions ==\n");
  print_world("mean world  ", mean);
  print_world("median world", median);

  // Demonstrate the round trip: serialize the tree back out.
  std::printf("\nSerialized form (re-parseable):\n%s\n",
              FormatTree(tree, /*indent=*/true).c_str());

  // The paper's MAX-2-SAT reduction (Section 4.1) shows that for *arbitrary*
  // correlations the median world is NP-hard; and/xor trees stay tractable
  // because mutual exclusion and coexistence nest hierarchically. Here the
  // median came out of an exact linear-time DP.
  std::printf("\nDone. The median world above is exact (tree DP), despite "
              "the cross-field correlation.\n");
  return 0;
}

// Copyright 2026 The ConsensusDB Authors
//
// Scenario: group-by aggregation and clustering over a sensor deployment
// (the model-driven data acquisition motivation of the paper's intro).
// Each sensor reports a discretized temperature band with calibrated
// confidences; queries:
//   1. SELECT band, COUNT(*) FROM readings GROUP BY band  — consensus count
//      vector (Section 6.1: mean vector + closest possible vector).
//   2. Cluster sensors by band — consensus clustering (Section 6.2).
//
//   $ ./sensor_aggregation [num_sensors] [num_bands] [seed]

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "core/aggregates.h"
#include "core/clustering.h"
#include "model/builders.h"
#include "workload/generators.h"

using namespace cpdb;

int main(int argc, char** argv) {
  int num_sensors = argc > 1 ? std::atoi(argv[1]) : 60;
  int num_bands = argc > 2 ? std::atoi(argv[2]) : 5;
  uint64_t seed = argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3])) : 7;
  Rng rng(seed);

  // probs[i][j] = Pr(sensor i reads band j); leftover = sensor offline.
  GroupByInstance instance{
      RandomGroupByMatrix(num_sensors, num_bands, 0.9, 0.15, &rng)};
  Status st = ValidateGroupBy(instance);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("== Group-by COUNT consensus over %d sensors, %d bands ==\n\n",
              num_sensors, num_bands);
  std::vector<double> mean = MeanAggregate(instance);
  auto median = ClosestPossibleAggregate(instance);
  if (!median.ok()) {
    std::fprintf(stderr, "%s\n", median.status().ToString().c_str());
    return 1;
  }
  std::printf("%6s %12s %18s\n", "band", "mean count", "median (possible)");
  for (int j = 0; j < num_bands; ++j) {
    std::printf("%6d %12.3f %18lld\n", j, mean[static_cast<size_t>(j)],
                static_cast<long long>((*median)[static_cast<size_t>(j)]));
  }
  std::vector<double> median_d(median->begin(), median->end());
  std::printf("\nE[d^2] of the mean vector:   %.4f (unrestricted optimum)\n",
              ExpectedSquaredDistance(instance, mean));
  std::printf("E[d^2] of the median vector: %.4f (<= 4x the best possible "
              "answer, Cor. 2)\n",
              ExpectedSquaredDistance(instance, median_d));

  // --- Consensus clustering of the sensors by band.
  auto tree = MakeAttributeUncertain(instance.probs);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  auto problem = ClusteringProblem::FromTree(*tree);
  if (!problem.ok()) {
    std::fprintf(stderr, "%s\n", problem.status().ToString().c_str());
    return 1;
  }
  ClusteringAnswer pivot = PivotClustering(*problem, &rng);
  ClusteringAnswer refined = LocalSearchClustering(*problem, pivot);
  ClusteringAnswer sampled = BestOfWorldsClustering(*tree, *problem, 96, &rng);

  std::printf("\n== Consensus clustering of the sensors ==\n");
  std::printf("pivot (ACN):            E[disagreements] = %.2f\n",
              problem->Expected(pivot));
  std::printf("pivot + local search:   E[disagreements] = %.2f\n",
              problem->Expected(refined));
  std::printf("best of 96 worlds:      E[disagreements] = %.2f\n",
              problem->Expected(sampled));

  // Show the refined clustering's shape.
  int num_clusters = 0;
  for (int c : refined.cluster_of) num_clusters = std::max(num_clusters, c + 1);
  std::printf("\nrefined clustering uses %d clusters over %d sensors\n",
              num_clusters, problem->num_keys());
  return 0;
}

// Copyright 2026 The ConsensusDB Authors
//
// Scenario: ranking movies from noisy crowd-sourced ratings — the
// information-retrieval motivation of the paper's introduction. Each movie's
// aggregate score is uncertain (alternatives from conflicting sources);
// several previously proposed Top-k semantics disagree, and the consensus
// framework adjudicates: we score every semantics under the expected
// distance objectives it is supposed to optimize.
//
//   $ ./movie_ranking [num_movies] [k] [seed]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/ranking_baselines.h"
#include "core/topk_footrule.h"
#include "core/topk_intersection.h"
#include "core/topk_symdiff.h"
#include "model/builders.h"

using namespace cpdb;

int main(int argc, char** argv) {
  int num_movies = argc > 1 ? std::atoi(argv[1]) : 25;
  int k = argc > 2 ? std::atoi(argv[2]) : 5;
  uint64_t seed = argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3])) : 2026;
  Rng rng(seed);

  // Build a BID table: each movie has 1-3 candidate aggregate ratings (e.g.
  // from different rating sites), weighted by source reliability; some mass
  // is reserved for "no reliable rating" (the movie drops out of a world).
  std::vector<Block> blocks;
  for (int m = 0; m < num_movies; ++m) {
    Block block;
    int sources = static_cast<int>(rng.UniformInt(1, 3));
    double reliability = rng.Uniform(0.6, 1.0);
    double base_quality = rng.Uniform(3.0, 9.0);
    for (int s = 0; s < sources; ++s) {
      TupleAlternative alt;
      alt.key = m;
      // Distinct scores: jitter per (movie, source).
      alt.score = base_quality + rng.Uniform(-1.0, 1.0) + m * 1e-4 + s * 1e-6;
      block.push_back({alt, reliability / sources});
    }
    blocks.push_back(block);
  }
  auto tree_or = MakeBlockIndependent(blocks);
  if (!tree_or.ok()) {
    std::fprintf(stderr, "%s\n", tree_or.status().ToString().c_str());
    return 1;
  }
  const AndXorTree& tree = *tree_or;

  RankDistribution dist = ComputeRankDistribution(tree, k);

  struct Row {
    std::string name;
    std::vector<KeyId> answer;
  };
  std::vector<Row> rows;
  rows.push_back({"consensus mean (d_Delta) = Global Top-k",
                  MeanTopKSymDiff(dist).keys});
  auto median = MedianTopKSymDiff(tree, dist);
  if (median.ok()) rows.push_back({"consensus median (d_Delta)", median->keys});
  auto inter = MeanTopKIntersectionExact(dist);
  if (inter.ok()) rows.push_back({"consensus mean (d_I)", inter->keys});
  auto foot = MeanTopKFootrule(dist);
  if (foot.ok()) rows.push_back({"consensus mean (d_F)", foot->keys});
  rows.push_back({"Upsilon_H ranking function",
                  MeanTopKIntersectionApprox(dist).keys});
  rows.push_back({"expected score", TopKByExpectedScore(tree, k)});
  rows.push_back({"expected rank", TopKByExpectedRank(tree, k)});
  rows.push_back({"PT-k (threshold 0.5)",
                  ProbabilisticThresholdTopK(dist, 0.5)});
  rows.push_back({"U-Top-k (5000 samples)", UTopKSampled(tree, k, 5000, &rng)});

  std::printf("Ranking %d movies, k = %d, seed %llu\n\n", num_movies, k,
              static_cast<unsigned long long>(seed));
  std::printf("%-42s %-24s %9s %9s %9s\n", "semantics", "answer",
              "E[d_Delta]", "E[d_I]", "E[d_F]");
  for (const Row& row : rows) {
    std::string answer = "[";
    for (KeyId key : row.answer) answer += " " + std::to_string(key);
    answer += " ]";
    std::printf("%-42s %-24s %9.4f %9.4f %9.3f\n", row.name.c_str(),
                answer.c_str(), ExpectedTopKSymDiff(dist, row.answer),
                ExpectedTopKIntersection(dist, row.answer),
                ExpectedTopKFootrule(dist, row.answer));
  }

  std::printf("\nEach consensus answer minimizes its own column by "
              "construction; the\nbaselines show how far heuristic semantics "
              "drift from the optimum.\n");
  return 0;
}

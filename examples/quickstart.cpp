// Copyright 2026 The ConsensusDB Authors
//
// Quickstart: build a small probabilistic table, ask for consensus answers.
//
//   $ ./quickstart
//
// Walks through the core API: building a BID table, validating it,
// enumerating its possible worlds, and computing the mean/median worlds and
// the consensus Top-k answers under three metrics.

#include <cstdio>

#include "core/jaccard.h"
#include "core/set_consensus.h"
#include "core/topk_footrule.h"
#include "core/topk_intersection.h"
#include "core/topk_symdiff.h"
#include "engine/engine.h"
#include "model/builders.h"
#include "model/possible_worlds.h"

using namespace cpdb;

int main() {
  // A tiny "sensor readings" table: each key is a sensor, alternatives are
  // mutually exclusive candidate readings with confidences (a BID table).
  //   sensor 1: 8.0 with 0.6, 5.5 with 0.3   (0.1: sensor offline)
  //   sensor 2: 9.5 with 0.7                 (0.3: offline)
  //   sensor 3: 7.0 with 0.5, 6.0 with 0.5   (never offline)
  std::vector<Block> blocks = {
      {{{1, 8.0, -1}, 0.6}, {{1, 5.5, -1}, 0.3}},
      {{{2, 9.5, -1}, 0.7}},
      {{{3, 7.0, -1}, 0.5}, {{3, 6.0, -1}, 0.5}},
  };
  auto tree_or = MakeBlockIndependent(blocks);
  if (!tree_or.ok()) {
    std::fprintf(stderr, "failed to build table: %s\n",
                 tree_or.status().ToString().c_str());
    return 1;
  }
  const AndXorTree& tree = *tree_or;

  std::printf("== The probabilistic database (and/xor tree) ==\n%s\n",
              tree.ToString().c_str());

  auto worlds = EnumerateWorlds(tree);
  std::printf("It has %zu possible worlds; the three most likely:\n",
              worlds->size());
  std::sort(worlds->begin(), worlds->end(),
            [](const World& a, const World& b) { return a.prob > b.prob; });
  for (size_t i = 0; i < 3 && i < worlds->size(); ++i) {
    std::printf("  world %zu (prob %.3f):", i + 1, (*worlds)[i].prob);
    for (const TupleAlternative& t : WorldTuples(tree, (*worlds)[i].leaf_ids)) {
      std::printf(" (sensor %d -> %.1f)", t.key, t.score);
    }
    std::printf("\n");
  }

  // --- Consensus worlds (Section 4 of the paper).
  std::vector<NodeId> mean_world = MeanWorldSymDiff(tree);
  std::vector<NodeId> median_world = MedianWorldSymDiff(tree);
  std::printf("\n== Consensus worlds under symmetric difference ==\n");
  std::printf("mean world  (E[d] = %.3f):",
              ExpectedSymDiffDistance(tree, mean_world));
  for (NodeId l : mean_world) {
    std::printf(" (sensor %d -> %.1f)", tree.node(l).leaf.key,
                tree.node(l).leaf.score);
  }
  std::printf("\nmedian world (E[d] = %.3f):",
              ExpectedSymDiffDistance(tree, median_world));
  for (NodeId l : median_world) {
    std::printf(" (sensor %d -> %.1f)", tree.node(l).leaf.key,
                tree.node(l).leaf.score);
  }
  std::printf("\n");

  // --- Consensus Top-2 answers (Section 5).
  const int k = 2;
  RankDistribution dist = ComputeRankDistribution(tree, k);
  std::printf("\n== Rank distribution (k = %d) ==\n", k);
  for (KeyId key : dist.keys()) {
    std::printf("sensor %d: Pr(rank 1) = %.3f, Pr(rank 2) = %.3f, "
                "Pr(in top-2) = %.3f\n",
                key, dist.PrRankEq(key, 1), dist.PrRankEq(key, 2),
                dist.PrTopK(key));
  }

  TopKResult mean_topk = MeanTopKSymDiff(dist);
  std::printf("\nmean Top-2 under d_Delta: [");
  for (KeyId key : mean_topk.keys) std::printf(" %d", key);
  std::printf(" ]  E[d_Delta] = %.3f\n", mean_topk.expected_distance);

  auto median_topk = MedianTopKSymDiff(tree, dist);
  std::printf("median Top-2 under d_Delta: [");
  for (KeyId key : median_topk->keys) std::printf(" %d", key);
  std::printf(" ]  E[d_Delta] = %.3f\n", median_topk->expected_distance);

  auto intersection = MeanTopKIntersectionExact(dist);
  std::printf("mean Top-2 under d_I: [");
  for (KeyId key : intersection->keys) std::printf(" %d", key);
  std::printf(" ]  E[d_I] = %.3f\n", intersection->expected_distance);

  auto footrule = MeanTopKFootrule(dist);
  std::printf("mean Top-2 under d_F: [");
  for (KeyId key : footrule->keys) std::printf(" %d", key);
  std::printf(" ]  E[d_F] = %.3f\n", footrule->expected_distance);

  // --- The same queries through the parallel engine. The engine is the
  // production entry point: it routes rank-distribution and consensus
  // queries through a shared thread pool, and its answers are bitwise
  // identical for any thread count (so parallelism is purely a speed knob).
  EngineOptions engine_opts;
  engine_opts.num_threads = 4;
  Engine engine(engine_opts);
  auto engine_topk = engine.ConsensusTopK(tree, k, TopKMetric::kSymDiff);
  std::printf("\n== Same query via cpdb::Engine (%d threads) ==\n",
              engine.num_threads());
  std::printf("mean Top-2 under d_Delta: [");
  for (KeyId key : engine_topk->keys) std::printf(" %d", key);
  std::printf(" ]  E[d_Delta] = %.3f\n", engine_topk->expected_distance);

  // A chunked-parallel Monte-Carlo cross-check of the closed form: the
  // estimate is reproducible from (seed, chunk size) alone.
  McEstimate mc = engine.McExpectedTopKDistance(
      tree, engine_topk->keys, k, TopKMetric::kSymDiff,
      /*num_samples=*/20000, /*seed=*/42);
  std::printf("Monte-Carlo E[d_Delta] = %.3f +/- %.3f (%d samples)\n",
              mc.mean, 1.96 * mc.std_error, mc.samples);

  return 0;
}
